"""The evaluation application: satellite-image composition (§4).

The paper's workload, modeled after the AVHRR Pathfinder processing at
NASA Goddard: every server delivers a sequence of 180 images; images are
composed pair-wise, pixel by pixel; the result is as large as the larger
input; and a sequence of 180 composed images arrives at the client.  Image
sizes follow the distribution the paper fitted to >1000 hurricane images
from 15 web sites: Normal with mean 128 KB and 25 % relative deviation.
"""

from repro.app.images import ImageWorkload, sample_image_sizes
from repro.app.composition import CompositionSpec
from repro.app.combine import JoinCombiner, MergeCombiner

__all__ = [
    "CompositionSpec",
    "ImageWorkload",
    "JoinCombiner",
    "MergeCombiner",
    "sample_image_sizes",
]
