"""Combiner semantics for the paper's application classes.

§2 of the paper lists the application classes its assumptions cover:
"composition/comparison of a sequence of images where each image is a
separate partition, hashed relational join where each hash bucket is a
separate partition, merging sorted results from multiple search engines
where a subsequence of sorted items ... is a separate partition."

A combiner defines two things the engine and the cost model need: the
**output size** of combining two partitions and the **compute time** it
takes.  :class:`~repro.app.composition.CompositionSpec` (output = max of
inputs, 7 µs/pixel) is the paper's evaluated instance; this module adds
the other two classes:

* :class:`MergeCombiner` — merging sorted subsequences: the output
  carries every input item (size = sum of inputs).
* :class:`JoinCombiner` — a hash-join bucket: each probe-side byte can
  match at most ``match_rate`` of the build side; the output is
  ``match_rate * min(inputs)`` plus the surviving join keys.  This is a
  deliberately simple semi-join-flavoured size model — joins can of
  course explode combinatorially, which ``match_rate > 1`` expresses.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MergeCombiner:
    """Merging sorted partitions (multi-way search-engine results).

    Output size is the sum of the inputs; compute is a linear scan over
    the output.
    """

    seconds_per_byte: float = 2e-7  # a compare-and-copy per item

    def __post_init__(self) -> None:
        if self.seconds_per_byte < 0:
            raise ValueError(
                f"seconds_per_byte must be non-negative, "
                f"got {self.seconds_per_byte!r}"
            )

    def output_size(self, size_a: float, size_b: float) -> float:
        """Every input item survives a merge."""
        if size_a < 0 or size_b < 0:
            raise ValueError("partition sizes must be non-negative")
        return size_a + size_b

    def compute_seconds(self, size_a: float, size_b: float) -> float:
        """Linear in the merged output."""
        return self.output_size(size_a, size_b) * self.seconds_per_byte

    @property
    def moment_rule(self) -> str:
        """How expected sizes propagate up the tree (see cost model)."""
        return "sum"


@dataclass(frozen=True)
class JoinCombiner:
    """A pipelined hash-join bucket (one partition per hash bucket).

    ``match_rate`` is the expected output bytes per byte of the smaller
    input: 0 < rate < 1 models selective joins, rate > 1 models fan-out.
    Compute charges a hash probe per input byte.
    """

    match_rate: float = 0.5
    seconds_per_byte: float = 5e-7

    def __post_init__(self) -> None:
        if self.match_rate <= 0:
            raise ValueError(f"match_rate must be positive, got {self.match_rate!r}")
        if self.seconds_per_byte < 0:
            raise ValueError(
                f"seconds_per_byte must be non-negative, "
                f"got {self.seconds_per_byte!r}"
            )

    def output_size(self, size_a: float, size_b: float) -> float:
        """Matches are bounded by the smaller side, scaled by the rate."""
        if size_a < 0 or size_b < 0:
            raise ValueError("partition sizes must be non-negative")
        return self.match_rate * min(size_a, size_b)

    def compute_seconds(self, size_a: float, size_b: float) -> float:
        """Build + probe: linear in both inputs."""
        return (size_a + size_b) * self.seconds_per_byte

    @property
    def moment_rule(self) -> str:
        return "scaled-min"
