"""The pair-wise image-composition operator's cost semantics."""

from __future__ import annotations

from dataclasses import dataclass

#: Paper constants.
DEFAULT_SECONDS_PER_PIXEL = 7e-6
DEFAULT_BYTES_PER_PIXEL = 1.0


@dataclass(frozen=True)
class CompositionSpec:
    """Cost and size semantics of one composition operation (§4).

    Images are compared pixel-by-pixel; if the inputs differ in size the
    smaller is expanded to the larger, and the output is as large as the
    larger input.  The paper charges 7 µs per pixel.
    """

    seconds_per_pixel: float = DEFAULT_SECONDS_PER_PIXEL
    bytes_per_pixel: float = DEFAULT_BYTES_PER_PIXEL

    def __post_init__(self) -> None:
        if self.seconds_per_pixel < 0:
            raise ValueError(
                f"seconds_per_pixel must be non-negative, got {self.seconds_per_pixel!r}"
            )
        if self.bytes_per_pixel <= 0:
            raise ValueError(
                f"bytes_per_pixel must be positive, got {self.bytes_per_pixel!r}"
            )

    def output_size(self, size_a: float, size_b: float) -> float:
        """Bytes of the composed image (max rule, §4)."""
        if size_a < 0 or size_b < 0:
            raise ValueError("image sizes must be non-negative")
        return max(size_a, size_b)

    def pixels(self, nbytes: float) -> float:
        """Pixel count of an image of ``nbytes`` bytes."""
        return nbytes / self.bytes_per_pixel

    def compute_seconds(self, size_a: float, size_b: float) -> float:
        """CPU seconds to compose two images (per-pixel over the output)."""
        return self.pixels(self.output_size(size_a, size_b)) * self.seconds_per_pixel

    @property
    def seconds_per_byte(self) -> float:
        """Composition cost per output byte (for the analytic cost model)."""
        return self.seconds_per_pixel / self.bytes_per_pixel

    @property
    def moment_rule(self) -> str:
        """How expected sizes propagate up the tree (max of inputs)."""
        return "max"
