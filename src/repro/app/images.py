"""Image sequences with the paper's fitted size distribution."""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

#: Paper defaults: 180 images/server, Normal(128 KB, 25 %).
DEFAULT_IMAGES_PER_SERVER = 180
DEFAULT_MEAN_SIZE = 128 * 1024.0
DEFAULT_REL_STD = 0.25
#: Truncation floor: no image smaller than 4 KB (a normal tail guard).
MIN_IMAGE_BYTES = 4 * 1024.0


def sample_image_sizes(
    count: int,
    rng: np.random.Generator,
    mean_size: float = DEFAULT_MEAN_SIZE,
    rel_std: float = DEFAULT_REL_STD,
) -> np.ndarray:
    """Draw ``count`` image sizes (bytes) from the paper's distribution."""
    if count < 0:
        raise ValueError(f"negative count {count!r}")
    if mean_size <= 0:
        raise ValueError(f"mean_size must be positive, got {mean_size!r}")
    if rel_std < 0:
        raise ValueError(f"rel_std must be non-negative, got {rel_std!r}")
    sizes = rng.normal(mean_size, mean_size * rel_std, size=count)
    return np.maximum(sizes, MIN_IMAGE_BYTES)


@dataclass(frozen=True)
class ImageWorkload:
    """Per-server image sequences for one simulation run.

    ``sizes[server_index][i]`` is the byte size of server ``i``-th image.
    """

    sizes: tuple[tuple[float, ...], ...]
    mean_size: float = DEFAULT_MEAN_SIZE
    rel_std: float = DEFAULT_REL_STD

    @classmethod
    def generate(
        cls,
        num_servers: int,
        images_per_server: int = DEFAULT_IMAGES_PER_SERVER,
        mean_size: float = DEFAULT_MEAN_SIZE,
        rel_std: float = DEFAULT_REL_STD,
        seed: int = 0,
    ) -> "ImageWorkload":
        """Sample a workload deterministically from ``seed``."""
        if num_servers < 1:
            raise ValueError(f"need at least one server, got {num_servers!r}")
        if images_per_server < 1:
            raise ValueError(
                f"need at least one image per server, got {images_per_server!r}"
            )
        rng = np.random.default_rng(seed)
        sizes = tuple(
            tuple(
                float(s)
                for s in sample_image_sizes(
                    images_per_server, rng, mean_size, rel_std
                )
            )
            for _ in range(num_servers)
        )
        return cls(sizes=sizes, mean_size=mean_size, rel_std=rel_std)

    @property
    def num_servers(self) -> int:
        return len(self.sizes)

    @property
    def images_per_server(self) -> int:
        return len(self.sizes[0]) if self.sizes else 0

    def size_of(self, server_index: int, iteration: int) -> float:
        """Byte size of one image."""
        return self.sizes[server_index][iteration]

    def total_bytes(self) -> float:
        """Sum of all raw image bytes across servers."""
        return float(sum(sum(row) for row in self.sizes))
