"""Producer/consumer stores (message queues).

A :class:`Store` holds items; ``put(item)`` and ``get()`` return events that
fire when the operation completes.  :class:`PriorityStore` delivers items in
priority order — the paper's hosts use it so that high-priority barrier
messages overtake queued bulk-data messages.  :class:`FilterStore` lets a
consumer wait for an item matching a predicate (used to wait for the reply
to a specific request).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Callable

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class StorePut(Event):
    """Event that fires when an item has been accepted by the store."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item


class StoreGet(Event):
    """Event that fires with the retrieved item as its value."""

    __slots__ = ()

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)


class FilterStoreGet(StoreGet):
    """A get that only matches items satisfying ``predicate``."""

    __slots__ = ("predicate",)

    def __init__(self, store: "Store", predicate: Callable[[Any], bool]) -> None:
        super().__init__(store)
        self.predicate = predicate


class Store:
    """An unbounded-or-bounded FIFO item store.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Maximum number of items held; ``put`` blocks while full.
        ``float("inf")`` (the default) means unbounded.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._putters: list[StorePut] = []
        self._getters: list[StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Offer ``item``; the event fires once the store has space."""
        event = StorePut(self, item)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self) -> StoreGet:
        """Request one item; the event's value is the item."""
        event = StoreGet(self)
        self._getters.append(event)
        self._dispatch()
        return event

    # -- internals ----------------------------------------------------------
    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            self._store_item(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        item = self._take_item(event)
        if item is _NO_ITEM:
            return False
        event.succeed(item)
        return True

    def _store_item(self, item: Any) -> None:
        self.items.append(item)

    def _take_item(self, event: StoreGet) -> Any:
        if self.items:
            return self.items.pop(0)
        return _NO_ITEM

    def _dispatch(self) -> None:
        # Alternate put/get matching until no further progress is possible.
        progress = True
        while progress:
            progress = False
            while self._putters:
                if self._do_put(self._putters[0]):
                    self._putters.pop(0)
                    progress = True
                else:
                    break
            remaining: list[StoreGet] = []
            for getter in self._getters:
                if self._do_get(getter):
                    progress = True
                else:
                    remaining.append(getter)
            self._getters = remaining


#: Sentinel distinguishing "no matching item" from a stored ``None``.
_NO_ITEM: Any = object()


class PriorityItem:
    """Wrapper ordering arbitrary items by an explicit priority."""

    __slots__ = ("priority", "item")

    def __init__(self, priority: int, item: Any) -> None:
        self.priority = priority
        self.item = item

    def __lt__(self, other: "PriorityItem") -> bool:
        return self.priority < other.priority

    def __eq__(self, other: object) -> bool:
        # Equality on priority (not payload) so that heap tuples fall
        # through to the insertion-sequence tie-breaker, keeping delivery
        # FIFO within a priority class.
        if isinstance(other, PriorityItem):
            return self.priority == other.priority
        return NotImplemented

    def __hash__(self) -> int:
        return object.__hash__(self)

    def __repr__(self) -> str:
        return f"PriorityItem({self.priority!r}, {self.item!r})"


class PriorityStore(Store):
    """A store that always yields the lowest-priority-value item first.

    Items must be mutually orderable; wrap arbitrary payloads in
    :class:`PriorityItem`.  Insertion order breaks ties (stable).
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        super().__init__(env, capacity)
        self._heap: list[tuple[Any, int, Any]] = []
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def items(self) -> list[Any]:  # type: ignore[override]
        """Snapshot of stored items in delivery order."""
        return [item for _, _, item in sorted(self._heap)]

    @items.setter
    def items(self, value: list[Any]) -> None:
        # Assigned by Store.__init__; only the empty initial list is allowed.
        if value:
            raise ValueError("PriorityStore items cannot be assigned directly")

    def _store_item(self, item: Any) -> None:
        heappush(self._heap, (item, self._sequence, item))
        self._sequence += 1

    def _take_item(self, event: StoreGet) -> Any:
        if self._heap:
            return heappop(self._heap)[2]
        return _NO_ITEM

    def _do_put(self, event: StorePut) -> bool:
        if len(self._heap) < self.capacity:
            self._store_item(event.item)
            event.succeed()
            return True
        return False

    def clear(self) -> list[Any]:
        """Remove and return all stored items, in delivery order."""
        drained = self.items
        self._heap.clear()
        return drained


class FilterStore(Store):
    """A store whose consumers can wait for items matching a predicate."""

    def get(self, predicate: Callable[[Any], bool] = lambda item: True) -> FilterStoreGet:  # type: ignore[override]
        """Request the first stored item satisfying ``predicate``."""
        event = FilterStoreGet(self, predicate)
        self._getters.append(event)
        self._dispatch()
        return event

    def _take_item(self, event: StoreGet) -> Any:
        assert isinstance(event, FilterStoreGet)
        for index, item in enumerate(self.items):
            if event.predicate(item):
                return self.items.pop(index)
        return _NO_ITEM
