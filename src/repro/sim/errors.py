"""Exception types used by the simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel itself."""


class StopSimulation(Exception):
    """Raised internally to terminate :meth:`Environment.run` early.

    Users normally stop a simulation by passing ``until`` to
    :meth:`Environment.run`; this exception is the mechanism behind
    :meth:`Environment.stop`.
    """

    def __init__(self, value: object = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The interrupting party supplies ``cause``, an arbitrary object that the
    interrupted process can inspect to decide how to react.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> object:
        """The object passed to :meth:`Process.interrupt`."""
        return self.args[0]


class EventFailed(SimulationError):
    """An event failed and nobody handled the failure.

    Raised out of :meth:`Environment.run` when a failed event's exception
    propagates to the top level (e.g. a process died with an unhandled
    exception and no other process was waiting on it).
    """
