"""Simulation environment and process machinery.

The :class:`Environment` owns the clock and the event calendar (a binary
heap keyed by ``(time, priority, sequence)`` — the sequence number makes the
simulation fully deterministic).  A :class:`Process` wraps a generator that
yields :class:`~repro.sim.events.Event` objects.
"""

from __future__ import annotations

import typing
from heapq import heappop, heappush
from typing import Any, Generator, Optional

from repro.sim.errors import EventFailed, Interrupt, SimulationError, StopSimulation
from repro.sim.events import (
    NORMAL,
    PENDING,
    URGENT,
    AllOf,
    AnyOf,
    Callback,
    Event,
    Timeout,
)

ProcessGenerator = Generator[Event, Any, Any]


class Environment:
    """A discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (seconds).
    """

    __slots__ = (
        "_now",
        "_queue",
        "_eid",
        "_active_process",
        "trace_hook",
        "events_processed",
    )

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional["Process"] = None
        #: Calendar events processed over the environment's lifetime.
        #: The hybrid fluid/DES fast path exists to shrink this number;
        #: the counter is what benchmarks and metrics report it from.
        self.events_processed = 0
        #: Observability hook ``(now, event) -> None`` invoked per processed
        #: event.  None (the default) keeps the hot loop untouched; traced
        #: runs install :meth:`repro.obs.Tracer.kernel_hook` here.
        self.trace_hook: Optional[typing.Callable[[float, Event], None]] = None

    # -- clock & calendar ---------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional["Process"]:
        """The process currently executing, if any."""
        return self._active_process

    def schedule(
        self, event: Event, priority: int = NORMAL, delay: float = 0.0
    ) -> None:
        """Put ``event`` on the calendar ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        heappush(self._queue, (self._now + delay, priority, self._eid, event))
        self._eid += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next event on the calendar."""
        try:
            self._now, _, _, event = heappop(self._queue)
        except IndexError:
            raise SimulationError("no scheduled events") from None
        self.events_processed += 1

        if self.trace_hook is not None:
            self.trace_hook(self._now, event)

        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None, "event processed twice"
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            exc = typing.cast(BaseException, event._value)
            raise EventFailed(f"unhandled failure in {event!r}: {exc!r}") from exc

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the calendar is empty;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed and return
          its value.
        """
        stop_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    # Already processed; nothing to run.
                    if stop_event._ok:
                        return stop_event._value
                    raise typing.cast(BaseException, stop_event._value)
                stop_event.callbacks.append(self._stop_callback)
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(
                        f"until={at} lies in the past (now={self._now})"
                    )
                stop_event = Event(self)
                stop_event._ok = True
                stop_event._value = None
                # URGENT so the clock stops before same-time NORMAL events.
                self.schedule(stop_event, priority=URGENT, delay=at - self._now)
                stop_event.callbacks.append(self._stop_callback)

        # The hot loop: step() inlined with the queue, heappop and the
        # exception types bound locally.  Sweeps spend the bulk of their
        # time here, so every attribute lookup per event counts.  The
        # traced variant exists so untraced runs pay nothing — not even a
        # per-event None test.
        queue = self._queue
        pop = heappop
        failed = EventFailed
        hook = self.trace_hook
        processed = 0
        try:
            if hook is None:
                while queue:
                    self._now, _, _, event = pop(queue)
                    processed += 1
                    callbacks, event.callbacks = event.callbacks, None
                    for callback in callbacks:  # type: ignore[union-attr]
                        callback(event)
                    if not event._ok and not event.defused:
                        exc = typing.cast(BaseException, event._value)
                        raise failed(
                            f"unhandled failure in {event!r}: {exc!r}"
                        ) from exc
            else:
                while queue:
                    self._now, _, _, event = pop(queue)
                    processed += 1
                    hook(self._now, event)
                    callbacks, event.callbacks = event.callbacks, None
                    for callback in callbacks:  # type: ignore[union-attr]
                        callback(event)
                    if not event._ok and not event.defused:
                        exc = typing.cast(BaseException, event._value)
                        raise failed(
                            f"unhandled failure in {event!r}: {exc!r}"
                        ) from exc
        except StopSimulation as stop:
            return stop.value
        finally:
            self.events_processed += processed

        if stop_event is not None and isinstance(until, Event):
            raise SimulationError(
                "simulation ran out of events before the awaited event fired"
            )
        return None

    def stop(self, value: Any = None) -> None:
        """Abort :meth:`run` immediately from inside a callback/process."""
        raise StopSimulation(value)

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        raise typing.cast(BaseException, event._value)

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def schedule_callback(
        self,
        delay: float,
        fn: typing.Callable[[], Any],
        priority: int = NORMAL,
    ) -> Callback:
        """Schedule ``fn()`` to run once, ``delay`` seconds from now.

        A process-free one-shot: exactly one calendar entry, no
        generator churn.  The fluid transfer fast path runs entire
        transfers through this instead of a :class:`Process`.
        """
        event = Callback(self, fn)
        self.schedule(event, priority=priority, delay=delay)
        return event

    def process(self, generator: ProcessGenerator, name: str = "") -> "Process":
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: typing.Iterable[Event]) -> AllOf:
        """Condition event firing once all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: typing.Iterable[Event]) -> AnyOf:
        """Condition event firing once any of ``events`` has fired."""
        return AnyOf(self, events)


class Process(Event):
    """A running simulation process.

    A process wraps a generator.  Each value the generator yields must be an
    :class:`Event`; the process sleeps until that event fires and is then
    resumed with the event's value (or, for failed events, has the event's
    exception thrown into it).  The process object is itself an event that
    fires when the generator returns — its value is the generator's return
    value — so processes can wait for one another.
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(
        self, env: Environment, generator: ProcessGenerator, name: str = ""
    ) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None if runnable
        #: or finished).
        self._target: Optional[Event] = None
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)  # type: ignore[union-attr]
        env.schedule(init, priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the wrapped generator has not exited."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event the process is waiting for (None when runnable)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        The process stops waiting on its current target (the target event is
        *not* cancelled — it may fire later and is then ignored) and resumes
        with the exception.  Interrupting a finished process is an error;
        interrupting itself is not allowed.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process is not allowed to interrupt itself")

        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defused = True
        interrupt_event.callbacks.append(self._resume)  # type: ignore[union-attr]
        self.env.schedule(interrupt_event, priority=URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired event."""
        if not self.is_alive:
            # A stale target fired after the process already terminated
            # (e.g. it was interrupted away from the target and then exited).
            return
        if self._target is not None and event is not self._target:
            # An interrupt arrived while we waited on _target: detach.
            if isinstance(event._value, Interrupt):
                if self._target.callbacks is not None:
                    try:
                        self._target.callbacks.remove(self._resume)
                    except ValueError:
                        pass
            else:
                # A stale event (left over after an interrupt) fired: ignore.
                return

        self.env._active_process = self
        self._target = None
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                event.defused = True
                next_event = self._generator.throw(
                    typing.cast(BaseException, event._value)
                )
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None

        if not isinstance(next_event, Event):
            raise SimulationError(
                f"process {self.name!r} yielded a non-event: {next_event!r}"
            )
        if next_event.env is not self.env:
            raise SimulationError(
                f"process {self.name!r} yielded an event from another environment"
            )
        if next_event.callbacks is None:
            # Already processed: resume immediately (keeps same-time order
            # deterministic by going through the calendar).
            resume = Event(self.env)
            resume._ok = next_event._ok
            resume._value = next_event._value
            if not resume._ok:
                resume.defused = True
            self._target = resume
            resume.callbacks.append(self._resume)  # type: ignore[union-attr]
            self.env.schedule(resume, priority=URGENT)
        else:
            self._target = next_event
            next_event.callbacks.append(self._resume)

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "dead"
        return f"<Process {self.name!r} ({state})>"
