"""Contended resources with FIFO or priority queueing.

A :class:`Resource` models a facility with a fixed number of slots (the
paper's single network interface per host is ``Resource(env, capacity=1)``).
Processes obtain a slot with ``request()`` — an event that fires when the
slot is granted — and free it with ``release(request)``.  Requests support
the context-manager protocol::

    with host.nic.request() as req:
        yield req
        ...  # slot held
    # slot released

:class:`PriorityResource` grants queued requests in priority order (lower
value = more important); the paper uses this to give barrier messages
priority over bulk data transfers.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING, Optional

from repro.sim.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class Request(Event):
    """A pending or granted claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "granted")

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        #: Set once the request holds a slot.
        self.granted = False

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Withdraw the request, releasing its slot if already granted."""
        self.resource.release(self)


class Resource:
    """A facility with ``capacity`` identical slots and a FIFO queue."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.env = env
        self._capacity = capacity
        self._users: list[Request] = []
        self._queue: list[Request] = []

    # -- introspection ------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Total number of slots."""
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    # -- protocol -----------------------------------------------------------
    def request(self) -> Request:
        """Claim a slot; the returned event fires when the slot is granted."""
        req = Request(self)
        self._queue.append(req)
        self._trigger()
        return req

    def try_acquire(self) -> Optional[Request]:
        """Claim a free slot synchronously, with no calendar event.

        Returns a granted :class:`Request` (free it with
        :meth:`release`), or None when every slot is held.  Occupancy
        accounting is identical to :meth:`request` — a free slot is
        claimed at call time either way — so holders via either protocol
        queue behind each other correctly.  The fluid facility fast path
        (:meth:`repro.net.host.Host._use`) uses this to occupy an
        uncontended disk/CPU with a single timeout event instead of the
        request-grant/timeout event pair.
        """
        if len(self._users) >= self._capacity:
            return None
        req = Request(self)
        req.granted = True
        req._ok = True
        req._value = None
        self._users.append(req)
        return req

    def release(self, request: Request) -> None:
        """Free the slot held by ``request`` (or withdraw it if queued)."""
        if request.granted:
            self._users.remove(request)
            request.granted = False
            self._trigger()
        else:
            try:
                self._remove_queued(request)
            except ValueError:
                pass  # released twice / never queued: harmless no-op

    # -- internals ----------------------------------------------------------
    def _remove_queued(self, request: Request) -> None:
        self._queue.remove(request)

    def _pop_next(self) -> Optional[Request]:
        return self._queue.pop(0) if self._queue else None

    def _trigger(self) -> None:
        while len(self._users) < self._capacity:
            req = self._pop_next()
            if req is None:
                return
            if req.triggered:
                raise SimulationError("queued request already triggered")
            req.granted = True
            self._users.append(req)
            req.succeed()


class PriorityRequest(Request):
    """A resource claim with a priority (lower value = served first)."""

    __slots__ = ("priority", "sequence", "withdrawn")

    def __init__(self, resource: "PriorityResource", priority: int) -> None:
        super().__init__(resource)
        self.priority = priority
        #: Sequence number for FIFO order among equal priorities.
        self.sequence = resource._next_sequence()
        self.withdrawn = False

    @property
    def key(self) -> tuple[int, int]:
        """Heap ordering key."""
        return (self.priority, self.sequence)


class PriorityResource(Resource):
    """A :class:`Resource` whose queue is served in priority order."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._heap: list[tuple[tuple[int, int], PriorityRequest]] = []
        self._sequence = 0

    def _next_sequence(self) -> int:
        self._sequence += 1
        return self._sequence

    @property
    def queue_length(self) -> int:
        return sum(1 for _, req in self._heap if not req.withdrawn)

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        """Claim a slot with the given ``priority`` (lower = sooner)."""
        req = PriorityRequest(self, priority)
        heappush(self._heap, (req.key, req))
        self._trigger()
        return req

    def _remove_queued(self, request: Request) -> None:
        assert isinstance(request, PriorityRequest)
        if request.withdrawn:
            raise ValueError("already withdrawn")
        request.withdrawn = True  # lazily dropped by _pop_next

    def _pop_next(self) -> Optional[Request]:
        while self._heap:
            _, req = heappop(self._heap)
            if not req.withdrawn:
                return req
        return None
