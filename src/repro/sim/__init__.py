"""Discrete-event simulation kernel.

This package is a from-scratch, process-oriented discrete-event simulation
(DES) kernel in the style of CSIM / SimPy.  The paper's evaluation was built
on CSIM, a commercial C library; this package is the substitute substrate.

The programming model:

* An :class:`~repro.sim.core.Environment` owns the simulation clock and the
  event calendar.
* A *process* is a Python generator function that yields
  :class:`~repro.sim.events.Event` objects; the process is suspended until
  the yielded event fires.
* :class:`~repro.sim.events.Timeout` models the passage of simulated time.
* :class:`~repro.sim.resources.Resource` and
  :class:`~repro.sim.resources.PriorityResource` model contended facilities
  (the paper's single network interface per host, the disk, the CPU).
* :class:`~repro.sim.stores.Store` and
  :class:`~repro.sim.stores.PriorityStore` model producer/consumer queues
  (the paper's message queues, where barrier messages get priority).

Determinism: ties in the event calendar are broken by scheduling order, so a
simulation with a fixed RNG seed is exactly reproducible.
"""

from repro.sim.core import Environment, Process
from repro.sim.errors import Interrupt, SimulationError, StopSimulation
from repro.sim.events import NORMAL, URGENT, AllOf, AnyOf, Callback, Event, Timeout
from repro.sim.resources import PriorityResource, Resource
from repro.sim.stores import FilterStore, PriorityStore, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Callback",
    "Environment",
    "Event",
    "FilterStore",
    "Interrupt",
    "NORMAL",
    "PriorityResource",
    "PriorityStore",
    "Process",
    "Resource",
    "SimulationError",
    "StopSimulation",
    "Store",
    "Timeout",
    "URGENT",
]
