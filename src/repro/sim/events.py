"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence on the simulation timeline.  It
moves through three states: *pending* (created but not yet triggered),
*triggered* (scheduled on the calendar with a value or an exception) and
*processed* (its callbacks have run).  Processes wait on events by yielding
them; the kernel resumes the process when the event is processed.
"""

from __future__ import annotations

import typing
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from repro.sim.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.core import Environment

#: Sentinel for "this event has no value yet".
PENDING: Any = object()

#: Calendar sub-priority for events that must run before same-time events.
URGENT = 0
#: Default calendar sub-priority.
NORMAL = 1


class Event:
    """A one-shot occurrence that processes can wait for.

    Parameters
    ----------
    env:
        The environment the event belongs to.
    """

    #: Events are allocated by the hundreds of thousands per simulation;
    #: ``__slots__`` keeps them dict-free (every subclass declares its own).
    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables invoked (in order) when the event is processed.  Set to
        #: ``None`` once the event has been processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        #: Set by a handler to prevent an unhandled failure from crashing
        #: the simulation run.
        self.defused: bool = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value/exception."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if not self.triggered:
            raise SimulationError("event has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance for failed events)."""
        if self._value is PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        Processes waiting on the event will have ``exception`` thrown into
        them.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(typing.cast(BaseException, event._value))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} at {id(self):#x}>"


class Callback(Event):
    """A one-shot scheduled function call.

    The fluid transfer fast path's primitive: no generator, no
    :class:`~repro.sim.core.Process` machinery — processing the event
    simply invokes ``fn``.  Created via
    :meth:`~repro.sim.core.Environment.schedule_callback`, which puts it
    on the calendar; where a process would cost an init event, a
    timeout, and a process-completion event, a callback costs exactly
    one calendar entry.
    """

    __slots__ = ("_fn",)

    def __init__(self, env: "Environment", fn: Callable[[], Any]) -> None:
        super().__init__(env)
        self._fn = fn
        self._ok = True
        self._value = None
        self.callbacks.append(self._invoke)  # type: ignore[union-attr]

    def _invoke(self, _event: "Event") -> None:
        self._fn()

    def __repr__(self) -> str:
        name = getattr(self._fn, "__name__", repr(self._fn))
        return f"<Callback {name}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r}>"


class ConditionValue:
    """Ordered mapping of event -> value for fired condition sub-events."""

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event]) -> None:
        self.events = list(events)

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(repr(event))
        return event._value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def todict(self) -> dict[Event, Any]:
        """Return a plain ``{event: value}`` dict."""
        return {event: event._value for event in self.events}

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Composite event over a set of sub-events.

    ``evaluate`` receives the list of sub-events and the count of those that
    have fired so far and returns True when the condition is satisfied.  Use
    the :class:`AllOf` / :class:`AnyOf` conveniences rather than this class
    directly.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("all events must belong to the same environment")

        if self._evaluate(self._events, 0):
            self.succeed(ConditionValue([]))
            return

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event.defused = True
            self.fail(typing.cast(BaseException, event._value))
        elif self._evaluate(self._events, self._count):
            self.succeed(ConditionValue(e for e in self._events if e.triggered))


class AllOf(Condition):
    """Fires when *all* of the given events have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        events = list(events)
        super().__init__(env, lambda evts, count: count >= len(evts), events)


class AnyOf(Condition):
    """Fires when *any* of the given events has fired.

    With an empty event list it fires immediately (there is nothing to wait
    for), mirroring the behaviour of :class:`AllOf`.
    """

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        events = list(events)
        super().__init__(
            env, lambda evts, count: count > 0 or len(evts) == 0, events
        )
