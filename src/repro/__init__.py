"""repro — reproduction of "Adapting to Bandwidth Variations in Wide-Area
Data Combination" (Ranganathan, Acharya, Saltz; ICDCS 1998).

The package implements the paper's full simulated system:

* :mod:`repro.sim` — a from-scratch discrete-event simulation kernel
  (the CSIM substitute);
* :mod:`repro.traces` — bandwidth traces and the synthetic stand-in for
  the paper's multi-day Internet study;
* :mod:`repro.net` — hosts with single network interfaces, trace-driven
  links with startup costs, priority message queueing;
* :mod:`repro.monitor` — passive monitoring, measurement caches with
  timeout, piggybacking, on-demand probes;
* :mod:`repro.dataflow` — combination trees, placements, the analytic
  cost model and critical-path analysis;
* :mod:`repro.placement` — download-all, one-shot, global and local
  placement algorithms;
* :mod:`repro.app` — the satellite-image-composition workload;
* :mod:`repro.engine` — the demand-driven pipeline execution engine with
  operator relocation, barrier change-overs and epoch wavefronts;
* :mod:`repro.experiments` — configuration generation and the per-figure
  reproduction harness.

Quickstart::

    from repro.experiments import ExperimentConfig, run_configuration
    from repro.engine import Algorithm

    setup = ExperimentConfig(num_servers=8, seed=42)
    metrics = run_configuration(setup, config_index=0, algorithm=Algorithm.GLOBAL)
    print(metrics.mean_interarrival)
"""

from repro.engine import Algorithm, RunMetrics, SimulationSpec, run_simulation

__version__ = "1.0.0"

__all__ = [
    "Algorithm",
    "RunMetrics",
    "SimulationSpec",
    "__version__",
    "run_simulation",
]
