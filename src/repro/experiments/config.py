"""Experiment configuration generation (paper §4).

"We generated the network configurations by different assignments of the
Internet bandwidth traces to the links in a complete graph of nine nodes
(eight servers and one client).  The assignments were generated using a
uniform random number generator."
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Optional

import numpy as np

from repro.engine.config import Algorithm, SimulationSpec
from repro.faults.plan import FaultPlan
from repro.traces.study import InternetStudy, TraceLibrary
from repro.traces.trace import BandwidthTrace


@lru_cache(maxsize=4)
def _default_library(seed: int) -> TraceLibrary:
    """The default (cached) synthetic Internet study."""
    return InternetStudy(seed=seed).run()


@dataclass(frozen=True)
class ExperimentConfig:
    """One composable config for a family of experiments *and* reporting.

    Collapses the workload knobs (formerly ``ExperimentSetup``) and the
    report knobs (formerly ``ReportOptions``; both aliases removed) into
    a single frozen dataclass, so a whole study is one value that can be
    passed around, ``dataclasses.replace``-d, and pickled to sweep
    workers.
    """

    # ---- workload ----------------------------------------------------
    num_servers: int = 8
    tree_shape: str = "binary"
    images_per_server: int = 180
    #: Master seed: configuration ``i`` derives all its randomness from
    #: ``(seed, i)``, so runs are reproducible and configurations are
    #: identical across the algorithms being compared.
    seed: int = 1998
    #: Seed of the synthetic Internet study (the trace library).
    study_seed: int = 1998
    relocation_period: float = 600.0
    local_extra_candidates: int = 0
    #: Grid-search engine for the one-shot/global planner family
    #: (``"vectorized"`` or the ``"scalar"`` reference loop; results are
    #: bit-identical either way).
    planner_engine: str = "vectorized"
    library: Optional[TraceLibrary] = None
    #: Optional fault-injection plan applied to every run built from this
    #: config (``None``: fault machinery stays dormant).
    fault_plan: Optional[FaultPlan] = None

    # ---- report scale ------------------------------------------------
    n_configs: int = 30
    #: Parallel sweep workers (None: honour ``REPRO_WORKERS``, else serial).
    workers: Optional[int] = None
    include_fig7: bool = True
    include_fig8: bool = True
    include_fig9: bool = True
    include_fig10: bool = True
    fig7_configs: Optional[int] = None
    fig8_configs: Optional[int] = None
    fig9_configs: Optional[int] = None
    fig10_configs: Optional[int] = None

    def trace_library(self) -> TraceLibrary:
        """The trace library (the default study unless one was injected)."""
        if self.library is not None:
            return self.library
        return _default_library(self.study_seed)

    @property
    def server_hosts(self) -> tuple[str, ...]:
        return tuple(f"h{i}" for i in range(self.num_servers))

    @property
    def client_host(self) -> str:
        return "client"

    def configs_for(self, figure: str) -> int:
        """Number of configurations to run for one of the sweep figures."""
        override = getattr(self, f"{figure}_configs")
        if override is not None:
            return override
        # The sweep figures multiply runs by their sweep size; scale down.
        return max(2, self.n_configs // 3)


def make_configuration(
    setup: ExperimentConfig, config_index: int
) -> dict[tuple[str, str], BandwidthTrace]:
    """Network configuration ``config_index``: a trace for every link.

    Traces are drawn uniformly at random (with replacement) from the
    library and rebased to start at the path's local noon, exactly as in
    the paper.  The draw depends only on ``(setup.seed, config_index)``.

    All link indices are drawn in one vectorized call (the PCG64 stream is
    identical to per-link draws) and the segments come from the library's
    per-pair noon-segment cache, so sampling a configuration is a handful
    of dict lookups rather than 36 segment constructions.
    """
    if config_index < 0:
        raise ValueError(f"negative config index {config_index!r}")
    rng = np.random.default_rng((setup.seed, config_index))
    library = setup.trace_library()
    hosts = [*setup.server_hosts, setup.client_host]
    keys: list[tuple[str, str]] = []
    for i, a in enumerate(hosts):
        for b in hosts[i + 1 :]:
            keys.append((a, b) if a < b else (b, a))
    segments = library.sample_noon_segments(rng, len(keys))
    return dict(zip(keys, segments))


@dataclass(frozen=True)
class SampledConfig:
    """One frozen, reusable network configuration.

    The paper's paired comparison evaluates all four algorithms on the
    *same* sampled configuration, so the sweep engine samples each
    configuration exactly once into this artifact and fans out
    ``(config, algorithm)`` pairs against it — the link traces (immutable
    :class:`~repro.traces.trace.BandwidthTrace` objects, prefix sums
    precomputed) are shared read-only by every run built from it.
    """

    config_index: int
    link_traces: dict[tuple[str, str], BandwidthTrace]
    #: Both derived from ``(setup.seed, config_index)`` at sampling time,
    #: so a spec built from the artifact never re-derives seeds.
    workload_seed: int
    control_seed: int


#: Most-recently sampled configurations, keyed by ``(id(setup), index)``.
#: The stored setup object guards against id reuse; the size bound keeps
#: a sweep's working set (the configuration currently being fanned out
#: across algorithms, plus a few neighbours) without pinning whole sweeps
#: in memory.  Per-process, so pool workers each keep their own.
_SAMPLED_MEMO: dict[tuple[int, int], tuple[ExperimentConfig, SampledConfig]] = {}
_SAMPLED_MEMO_MAX = 8


def sample_config(
    setup: ExperimentConfig, config_index: int, *, cache: bool = True
) -> SampledConfig:
    """Sample (or fetch the memoized) configuration ``config_index``.

    Sampling is a pure function of ``(setup, config_index)``, so the
    build-once memo is invisible to results — it only removes the
    redundant resampling the old per-run path performed once per
    algorithm.  ``cache=False`` forces a fresh sample (benchmarks use it
    to measure the build cost itself).
    """
    key = (id(setup), config_index)
    if cache:
        hit = _SAMPLED_MEMO.get(key)
        if hit is not None and hit[0] is setup:
            return hit[1]
    sampled = SampledConfig(
        config_index=config_index,
        link_traces=make_configuration(setup, config_index),
        workload_seed=setup.seed + config_index,
        control_seed=setup.seed + config_index,
    )
    if cache:
        if len(_SAMPLED_MEMO) >= _SAMPLED_MEMO_MAX:
            _SAMPLED_MEMO.pop(next(iter(_SAMPLED_MEMO)))
        _SAMPLED_MEMO[key] = (setup, sampled)
    return sampled


def build_spec_from_config(
    setup: ExperimentConfig,
    sampled: SampledConfig,
    algorithm: Algorithm,
    **overrides,
) -> SimulationSpec:
    """A :class:`SimulationSpec` running ``algorithm`` on a sampled config.

    This is the fan-out half of the build-once pipeline: every algorithm
    (and per-task override set) gets its own spec, but they all reference
    the same frozen :class:`SampledConfig`.
    """
    base = SimulationSpec(
        algorithm=algorithm,
        tree_shape=setup.tree_shape,
        num_servers=setup.num_servers,
        link_traces=sampled.link_traces,
        server_hosts=setup.server_hosts,
        client_host=setup.client_host,
        images_per_server=setup.images_per_server,
        workload_seed=sampled.workload_seed,
        relocation_period=setup.relocation_period,
        local_extra_candidates=setup.local_extra_candidates,
        planner_engine=setup.planner_engine,
        control_seed=sampled.control_seed,
        faults=setup.fault_plan,
    )
    return replace(base, **overrides) if overrides else base


def build_spec(
    setup: ExperimentConfig,
    config_index: int,
    algorithm: Algorithm,
    **overrides,
) -> SimulationSpec:
    """A full :class:`SimulationSpec` for one (configuration, algorithm).

    ``overrides`` are forwarded to the spec (e.g. ``relocation_period``,
    ``prefetch``, ``barrier_priority``, ``local_extra_candidates``).
    Successive calls for the same ``(setup, config_index)`` reuse the
    build-once :class:`SampledConfig` artifact via :func:`sample_config`.
    """
    sampled = sample_config(setup, config_index)
    return build_spec_from_config(setup, sampled, algorithm, **overrides)
