"""Experiment configuration generation (paper §4).

"We generated the network configurations by different assignments of the
Internet bandwidth traces to the links in a complete graph of nine nodes
(eight servers and one client).  The assignments were generated using a
uniform random number generator."
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Optional

import numpy as np

from repro.engine.config import Algorithm, SimulationSpec
from repro.faults.plan import FaultPlan
from repro.traces.study import InternetStudy, TraceLibrary
from repro.traces.trace import BandwidthTrace


@lru_cache(maxsize=4)
def _default_library(seed: int) -> TraceLibrary:
    """The default (cached) synthetic Internet study."""
    return InternetStudy(seed=seed).run()


@dataclass(frozen=True)
class ExperimentConfig:
    """One composable config for a family of experiments *and* reporting.

    Collapses the workload knobs (formerly :class:`ExperimentSetup`) and
    the report knobs (formerly :class:`~repro.experiments.report.
    ReportOptions`) into a single frozen dataclass, so a whole study is
    one value that can be passed around, ``dataclasses.replace``-d, and
    pickled to sweep workers.
    """

    # ---- workload ----------------------------------------------------
    num_servers: int = 8
    tree_shape: str = "binary"
    images_per_server: int = 180
    #: Master seed: configuration ``i`` derives all its randomness from
    #: ``(seed, i)``, so runs are reproducible and configurations are
    #: identical across the algorithms being compared.
    seed: int = 1998
    #: Seed of the synthetic Internet study (the trace library).
    study_seed: int = 1998
    relocation_period: float = 600.0
    local_extra_candidates: int = 0
    library: Optional[TraceLibrary] = None
    #: Optional fault-injection plan applied to every run built from this
    #: config (``None``: fault machinery stays dormant).
    fault_plan: Optional[FaultPlan] = None

    # ---- report scale ------------------------------------------------
    n_configs: int = 30
    #: Parallel sweep workers (None: honour ``REPRO_WORKERS``, else serial).
    workers: Optional[int] = None
    include_fig7: bool = True
    include_fig8: bool = True
    include_fig9: bool = True
    include_fig10: bool = True
    fig7_configs: Optional[int] = None
    fig8_configs: Optional[int] = None
    fig9_configs: Optional[int] = None
    fig10_configs: Optional[int] = None

    def trace_library(self) -> TraceLibrary:
        """The trace library (the default study unless one was injected)."""
        if self.library is not None:
            return self.library
        return _default_library(self.study_seed)

    @property
    def server_hosts(self) -> tuple[str, ...]:
        return tuple(f"h{i}" for i in range(self.num_servers))

    @property
    def client_host(self) -> str:
        return "client"

    def configs_for(self, figure: str) -> int:
        """Number of configurations to run for one of the sweep figures."""
        override = getattr(self, f"{figure}_configs")
        if override is not None:
            return override
        # The sweep figures multiply runs by their sweep size; scale down.
        return max(2, self.n_configs // 3)


class ExperimentSetup(ExperimentConfig):
    """Deprecated alias of :class:`ExperimentConfig`.

    Kept for one release so existing call sites keep working; construct
    :class:`ExperimentConfig` instead.
    """

    def __init__(self, *args, **kwargs) -> None:
        warnings.warn(
            "ExperimentSetup is deprecated; use ExperimentConfig",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)


def make_configuration(
    setup: ExperimentConfig, config_index: int
) -> dict[tuple[str, str], BandwidthTrace]:
    """Network configuration ``config_index``: a trace for every link.

    Traces are drawn uniformly at random (with replacement) from the
    library and rebased to start at the path's local noon, exactly as in
    the paper.  The draw depends only on ``(setup.seed, config_index)``.
    """
    if config_index < 0:
        raise ValueError(f"negative config index {config_index!r}")
    rng = np.random.default_rng((setup.seed, config_index))
    library = setup.trace_library()
    hosts = [*setup.server_hosts, setup.client_host]
    links: dict[tuple[str, str], BandwidthTrace] = {}
    for i, a in enumerate(hosts):
        for b in hosts[i + 1 :]:
            key = (a, b) if a < b else (b, a)
            links[key] = library.sample_noon_segment(rng)
    return links


def build_spec(
    setup: ExperimentConfig,
    config_index: int,
    algorithm: Algorithm,
    **overrides,
) -> SimulationSpec:
    """A full :class:`SimulationSpec` for one (configuration, algorithm).

    ``overrides`` are forwarded to the spec (e.g. ``relocation_period``,
    ``prefetch``, ``barrier_priority``, ``local_extra_candidates``).
    """
    links = make_configuration(setup, config_index)
    base = SimulationSpec(
        algorithm=algorithm,
        tree_shape=setup.tree_shape,
        num_servers=setup.num_servers,
        link_traces=links,
        server_hosts=setup.server_hosts,
        client_host=setup.client_host,
        images_per_server=setup.images_per_server,
        workload_seed=setup.seed + config_index,
        relocation_period=setup.relocation_period,
        local_extra_candidates=setup.local_extra_candidates,
        control_seed=setup.seed + config_index,
        faults=setup.fault_plan,
    )
    return replace(base, **overrides) if overrides else base
