"""One reproduction function per paper figure (§5).

Every function runs the relevant algorithms over ``n_configs`` network
configurations (the paper uses 300) and returns a structured result whose
``format_table()`` renders the same rows/series the paper reports.  The
benchmark harness in ``benchmarks/`` wraps these functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.engine.config import Algorithm
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import run_sweep
from repro.experiments.runner import (
    AlgorithmSummary,
    compare_algorithms,
    speedup_series,
)


def _median(values: np.ndarray) -> float:
    return float(np.median(values))


# --------------------------------------------------------------------------
# Figure 6 — main comparison over 300 configurations
# --------------------------------------------------------------------------
@dataclass
class Fig6Result:
    """Speedups over download-all for one-shot, local and global."""

    one_shot_speedups: np.ndarray
    local_speedups: np.ndarray
    global_speedups: np.ndarray
    mean_interarrival: dict[str, float]

    #: Paper reference points (§5).
    PAPER_INTERARRIVAL = {
        "download-all": 101.2,
        "one-shot": 24.6,
        "local": 22.0,
        "global": 17.1,
    }
    PAPER_GLOBAL_OVER_ONE_SHOT_MEDIAN = 1.40
    PAPER_GLOBAL_OVER_LOCAL_MEDIAN = 1.25

    @property
    def median_global_over_one_shot(self) -> float:
        """Median of per-config global/one-shot speedup ratios."""
        return _median(self.global_speedups / self.one_shot_speedups)

    @property
    def median_global_over_local(self) -> float:
        """Median of per-config global/local speedup ratios."""
        return _median(self.global_speedups / self.local_speedups)

    def sorted_series(self) -> dict[str, np.ndarray]:
        """The figure's plotted series: speedups sorted per panel.

        Panel 1 sorts by the global algorithm's speedup and shows one-shot
        alongside; panel 2 does the same for local vs global.
        """
        order = np.argsort(self.global_speedups)
        return {
            "global": self.global_speedups[order],
            "one-shot": self.one_shot_speedups[order],
            "local": self.local_speedups[order],
        }

    def format_table(self) -> str:
        rows = [
            "Figure 6 / §5 — speedup over download-all "
            f"({len(self.global_speedups)} configurations)",
            f"{'algorithm':>12s} {'median speedup':>15s} {'mean speedup':>13s} "
            f"{'mean interarrival (s)':>22s} {'paper (s)':>10s}",
        ]
        series = {
            "one-shot": self.one_shot_speedups,
            "local": self.local_speedups,
            "global": self.global_speedups,
        }
        rows.append(
            f"{'download-all':>12s} {1.0:15.2f} {1.0:13.2f} "
            f"{self.mean_interarrival['download-all']:22.1f} "
            f"{self.PAPER_INTERARRIVAL['download-all']:10.1f}"
        )
        for name, speedups in series.items():
            rows.append(
                f"{name:>12s} {_median(speedups):15.2f} "
                f"{float(np.mean(speedups)):13.2f} "
                f"{self.mean_interarrival[name]:22.1f} "
                f"{self.PAPER_INTERARRIVAL[name]:10.1f}"
            )
        rows.append(
            f"median global/one-shot ratio: {self.median_global_over_one_shot:.2f} "
            f"(paper ~{self.PAPER_GLOBAL_OVER_ONE_SHOT_MEDIAN:.2f})"
        )
        rows.append(
            f"median global/local ratio:    {self.median_global_over_local:.2f} "
            f"(paper ~{self.PAPER_GLOBAL_OVER_LOCAL_MEDIAN:.2f})"
        )
        return "\n".join(rows)


def fig6_main_comparison(
    setup: Optional[ExperimentConfig] = None,
    n_configs: int = 300,
    workers: Optional[int] = None,
) -> Fig6Result:
    """Reproduce Figure 6 and the §5 inter-arrival table."""
    setup = setup or ExperimentConfig()
    algorithms = [
        Algorithm.DOWNLOAD_ALL,
        Algorithm.ONE_SHOT,
        Algorithm.LOCAL,
        Algorithm.GLOBAL,
    ]
    summaries = compare_algorithms(setup, algorithms, n_configs, workers=workers)
    baseline = summaries[Algorithm.DOWNLOAD_ALL.value]
    return Fig6Result(
        one_shot_speedups=speedup_series(
            summaries[Algorithm.ONE_SHOT.value], baseline
        ),
        local_speedups=speedup_series(summaries[Algorithm.LOCAL.value], baseline),
        global_speedups=speedup_series(summaries[Algorithm.GLOBAL.value], baseline),
        mean_interarrival={
            name: summary.mean_interarrival for name, summary in summaries.items()
        },
    )


# --------------------------------------------------------------------------
# Figure 7 — extra random candidate sites for the local algorithm
# --------------------------------------------------------------------------
@dataclass
class Fig7Result:
    """Mean local-algorithm speedup as a function of k extra sites."""

    ks: tuple[int, ...]
    mean_speedups: tuple[float, ...]

    def spread(self) -> float:
        """Max-min of the series (the paper finds it insignificant)."""
        return max(self.mean_speedups) - min(self.mean_speedups)

    def format_table(self) -> str:
        rows = [
            "Figure 7 — local algorithm with k extra random candidate sites",
            f"{'k':>3s} {'mean speedup over download-all':>31s}",
        ]
        for k, speedup in zip(self.ks, self.mean_speedups):
            rows.append(f"{k:3d} {speedup:31.2f}")
        rows.append(
            f"spread: {self.spread():.2f} "
            "(paper: no significant difference)"
        )
        return "\n".join(rows)


def fig7_extra_sites(
    setup: Optional[ExperimentConfig] = None,
    n_configs: int = 300,
    ks: Sequence[int] = (0, 1, 2, 3, 4, 5, 6),
    workers: Optional[int] = None,
) -> Fig7Result:
    """Reproduce Figure 7."""
    setup = setup or ExperimentConfig()
    mean_speedups = []
    for k in ks:
        tasks = []
        for index in range(n_configs):
            tasks.append((index, Algorithm.DOWNLOAD_ALL))
            tasks.append(
                (index, Algorithm.LOCAL, {"local_extra_candidates": k})
            )
        results = run_sweep(setup, tasks, workers=workers)
        baseline = AlgorithmSummary(Algorithm.DOWNLOAD_ALL.value)
        local = AlgorithmSummary(Algorithm.LOCAL.value)
        for index in range(n_configs):
            baseline.add(results[(index, Algorithm.DOWNLOAD_ALL.value)])
            local.add(results[(index, Algorithm.LOCAL.value)])
        mean_speedups.append(float(np.mean(speedup_series(local, baseline))))
    return Fig7Result(ks=tuple(ks), mean_speedups=tuple(mean_speedups))


# --------------------------------------------------------------------------
# Figure 8 — scaling with the number of servers
# --------------------------------------------------------------------------
@dataclass
class Fig8Result:
    """Mean speedup per algorithm for each server count."""

    server_counts: tuple[int, ...]
    #: algorithm value -> tuple of mean speedups (aligned with counts).
    mean_speedups: dict[str, tuple[float, ...]]

    def format_table(self) -> str:
        rows = [
            "Figure 8 — mean speedup over download-all vs number of servers",
            f"{'servers':>8s} "
            + " ".join(f"{name:>10s}" for name in self.mean_speedups),
        ]
        for i, count in enumerate(self.server_counts):
            rows.append(
                f"{count:8d} "
                + " ".join(
                    f"{values[i]:10.2f}" for values in self.mean_speedups.values()
                )
            )
        rows.append("paper: global scales best; local degrades with size")
        return "\n".join(rows)


def fig8_server_scaling(
    setup: Optional[ExperimentConfig] = None,
    n_configs: int = 300,
    server_counts: Sequence[int] = (4, 8, 16, 32),
    workers: Optional[int] = None,
) -> Fig8Result:
    """Reproduce Figure 8."""
    base = setup or ExperimentConfig()
    algorithms = [Algorithm.ONE_SHOT, Algorithm.LOCAL, Algorithm.GLOBAL]
    results: dict[str, list[float]] = {a.value: [] for a in algorithms}
    from dataclasses import replace

    for count in server_counts:
        scaled = replace(base, num_servers=count)
        summaries = compare_algorithms(
            scaled,
            [Algorithm.DOWNLOAD_ALL, *algorithms],
            n_configs,
            workers=workers,
        )
        baseline = summaries[Algorithm.DOWNLOAD_ALL.value]
        for algorithm in algorithms:
            speedups = speedup_series(summaries[algorithm.value], baseline)
            results[algorithm.value].append(float(np.mean(speedups)))
    return Fig8Result(
        server_counts=tuple(server_counts),
        mean_speedups={name: tuple(vals) for name, vals in results.items()},
    )


# --------------------------------------------------------------------------
# Figure 9 — relocation period sweep for the global algorithm
# --------------------------------------------------------------------------
@dataclass
class Fig9Result:
    """Mean global-algorithm speedup per relocation period."""

    periods: tuple[float, ...]
    mean_speedups: tuple[float, ...]

    @property
    def best_period(self) -> float:
        return self.periods[int(np.argmax(self.mean_speedups))]

    def format_table(self) -> str:
        rows = [
            "Figure 9 — global algorithm vs relocation period",
            f"{'period (min)':>13s} {'mean speedup':>13s}",
        ]
        for period, speedup in zip(self.periods, self.mean_speedups):
            rows.append(f"{period / 60.0:13.1f} {speedup:13.2f}")
        rows.append(
            f"best period: {self.best_period / 60.0:.1f} min "
            "(paper: 5-10 minutes)"
        )
        return "\n".join(rows)


def fig9_relocation_period(
    setup: Optional[ExperimentConfig] = None,
    n_configs: int = 300,
    periods: Sequence[float] = (120.0, 300.0, 600.0, 1800.0, 3600.0),
    workers: Optional[int] = None,
) -> Fig9Result:
    """Reproduce Figure 9 (five periods between two minutes and an hour)."""
    setup = setup or ExperimentConfig()
    means = []
    for period in periods:
        tasks = []
        for index in range(n_configs):
            tasks.append((index, Algorithm.DOWNLOAD_ALL))
            tasks.append(
                (index, Algorithm.GLOBAL, {"relocation_period": period})
            )
        results = run_sweep(setup, tasks, workers=workers)
        baseline = AlgorithmSummary(Algorithm.DOWNLOAD_ALL.value)
        online = AlgorithmSummary(Algorithm.GLOBAL.value)
        for index in range(n_configs):
            baseline.add(results[(index, Algorithm.DOWNLOAD_ALL.value)])
            online.add(results[(index, Algorithm.GLOBAL.value)])
        means.append(float(np.mean(speedup_series(online, baseline))))
    return Fig9Result(periods=tuple(periods), mean_speedups=tuple(means))


# --------------------------------------------------------------------------
# Figure 10 — combination order (binary vs left-deep)
# --------------------------------------------------------------------------
@dataclass
class Fig10Result:
    """Per-config speedups under both tree shapes for global and local."""

    global_binary: np.ndarray
    global_left_deep: np.ndarray
    local_binary: np.ndarray
    local_left_deep: np.ndarray

    def mean(self, series: np.ndarray) -> float:
        return float(np.mean(series))

    def format_table(self) -> str:
        rows = [
            "Figure 10 — combination order: complete binary vs left-deep",
            f"{'algorithm':>10s} {'binary mean':>12s} {'left-deep mean':>15s}",
            f"{'global':>10s} {self.mean(self.global_binary):12.2f} "
            f"{self.mean(self.global_left_deep):15.2f}",
            f"{'local':>10s} {self.mean(self.local_binary):12.2f} "
            f"{self.mean(self.local_left_deep):15.2f}",
            "paper: the complete binary order beats the left-deep order "
            "for both on-line algorithms",
        ]
        return "\n".join(rows)


def fig10_tree_shape(
    setup: Optional[ExperimentConfig] = None,
    n_configs: int = 300,
    workers: Optional[int] = None,
) -> Fig10Result:
    """Reproduce Figure 10.

    Note the download-all baseline is re-run per tree shape: with all
    operators at the client the tree shape only changes composition order,
    so the baseline is effectively shared, as in the paper.
    """
    from dataclasses import replace

    base = setup or ExperimentConfig()
    series: dict[tuple[str, str], np.ndarray] = {}
    for shape in ("binary", "left-deep"):
        shaped = replace(base, tree_shape=shape)
        summaries = compare_algorithms(
            shaped,
            [Algorithm.DOWNLOAD_ALL, Algorithm.GLOBAL, Algorithm.LOCAL],
            n_configs,
            workers=workers,
        )
        baseline = summaries[Algorithm.DOWNLOAD_ALL.value]
        for algorithm in (Algorithm.GLOBAL, Algorithm.LOCAL):
            series[(algorithm.value, shape)] = speedup_series(
                summaries[algorithm.value], baseline
            )
    return Fig10Result(
        global_binary=series[("global", "binary")],
        global_left_deep=series[("global", "left-deep")],
        local_binary=series[("local", "binary")],
        local_left_deep=series[("local", "left-deep")],
    )
