"""Parallel sweep execution for experiment batches.

The paper's headline figures each aggregate hundreds of independent
``(configuration, algorithm)`` simulations.  Every task is a pure function
of ``(setup, config_index, algorithm, overrides)``, so the sweep is
embarrassingly parallel — this module fans it out over a
:class:`~concurrent.futures.ProcessPoolExecutor` while keeping the output
**bit-identical** to the serial loop:

* tasks are dispatched in chunks but results are keyed by
  ``(config_index, algorithm)`` and re-assembled in serial order, so the
  caller never observes pool scheduling;
* each worker runs an initializer that receives the
  :class:`~repro.experiments.config.ExperimentConfig` **once**,
  reconstructs the trace library from its seed inside the worker and warms
  its noon-segment cache — individual tasks never pickle traces (a library
  is ~66 two-day arrays), they ship only integer indices and names;
* each configuration is sampled **once** into a frozen
  :class:`~repro.experiments.config.SampledConfig` and fanned out across
  the algorithms comparing on it (default chunk sizes are aligned to whole
  configuration groups so the reuse happens inside one worker);
* the worker count comes from an explicit argument, falling back to the
  ``REPRO_WORKERS`` environment variable, falling back to 1 (serial);
  ``workers <= 0`` means "one per CPU";
* if the platform cannot start a process pool (sandboxes without
  ``fork``/semaphores, interpreters without ``multiprocessing``), the
  sweep silently degrades to the serial loop — same results, one process.

The serial and parallel paths share the task list and the assembly code,
which is what the determinism tests in
``tests/experiments/test_parallel.py`` pin down.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.engine.config import Algorithm
from repro.engine.metrics import RunMetrics
from repro.engine.simulation import run_simulation
from repro.experiments.config import (
    ExperimentConfig,
    build_spec_from_config,
    sample_config,
)

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

#: A result key: ``(config_index, algorithm value)``.
SweepKey = tuple[int, str]

#: A normalized task: key plus a hashable overrides tuple.
_Task = tuple[int, str, tuple[tuple[str, Any], ...]]

#: Errors that mean "no process pool on this platform" — the sweep falls
#: back to the serial loop rather than failing.
_POOL_UNAVAILABLE = (ImportError, NotImplementedError, OSError, PermissionError)


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count for a sweep.

    Precedence: explicit ``workers`` argument, then the ``REPRO_WORKERS``
    environment variable, then 1 (serial).  A value ``<= 0`` requests one
    worker per CPU.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}"
            ) from None
    workers = int(workers)
    if workers <= 0:
        return os.cpu_count() or 1
    return workers


def _normalize_tasks(
    tasks: Sequence[tuple],
    shared_overrides: Optional[Mapping[str, Any]],
) -> list[_Task]:
    """Canonical task tuples with merged, hashable overrides."""
    shared = dict(shared_overrides or {})
    normalized: list[_Task] = []
    seen: set[SweepKey] = set()
    for task in tasks:
        if len(task) == 2:
            config_index, algorithm = task
            extra: Mapping[str, Any] = {}
        elif len(task) == 3:
            config_index, algorithm, extra = task
            extra = extra or {}
        else:
            raise ValueError(
                f"task must be (config, algorithm[, overrides]), got {task!r}"
            )
        algorithm = Algorithm(algorithm)
        key = (int(config_index), algorithm.value)
        if key in seen:
            raise ValueError(
                f"duplicate sweep task {key}; results are keyed by "
                "(config_index, algorithm), so each pair may appear once"
            )
        seen.add(key)
        merged = {**shared, **dict(extra)}
        normalized.append((key[0], key[1], tuple(sorted(merged.items()))))
    return normalized


# -- worker side -----------------------------------------------------------
#: Per-worker state, installed once by :func:`_init_worker`.
_WORKER_SETUP: Optional[ExperimentConfig] = None


def _init_worker(setup: ExperimentConfig) -> None:
    """Process-pool initializer: install the setup and build its library.

    The setup is pickled to each worker exactly once (as an initializer
    argument).  When the setup carries no injected library, the library is
    reconstructed here from ``study_seed``, so the 66-pair trace study is
    synthesized once per worker and never crosses a pipe per task.
    """
    global _WORKER_SETUP
    _WORKER_SETUP = setup
    # Warm the library's per-pair noon segments too: configuration
    # sampling inside the worker then reduces to dict lookups, and the
    # segments' prefix sums are computed once per worker, not per run.
    setup.trace_library().warm_noon_segments()


def _run_task(task: _Task) -> tuple[SweepKey, RunMetrics]:
    """Simulate one task against the worker's installed setup.

    Tasks ship only ``(config_index, algorithm value, overrides)`` — the
    configuration itself is sampled (or fetched from the build-once memo)
    against the worker-resident setup, so consecutive algorithms on one
    configuration share a single :class:`SampledConfig` artifact.
    """
    config_index, algorithm_value, overrides = task
    setup = _WORKER_SETUP
    if setup is None:  # pragma: no cover - initializer always runs first
        raise RuntimeError("worker used before _init_worker ran")
    sampled = sample_config(setup, config_index)
    spec = build_spec_from_config(
        setup, sampled, Algorithm(algorithm_value), **dict(overrides)
    )
    return (config_index, algorithm_value), run_simulation(spec)


# -- driver side -----------------------------------------------------------
def _run_serial(
    setup: ExperimentConfig,
    tasks: Sequence[_Task],
    progress: Optional[Callable],
) -> dict[SweepKey, RunMetrics]:
    setup.trace_library().warm_noon_segments()
    results: dict[SweepKey, RunMetrics] = {}
    for config_index, algorithm_value, overrides in tasks:
        # Build-once: the sample_config memo hands every algorithm of one
        # configuration the same frozen SampledConfig artifact.
        sampled = sample_config(setup, config_index)
        spec = build_spec_from_config(
            setup, sampled, Algorithm(algorithm_value), **dict(overrides)
        )
        metrics = run_simulation(spec)
        results[(config_index, algorithm_value)] = metrics
        if progress is not None:
            progress(config_index, Algorithm(algorithm_value), metrics)
    return results


def _run_parallel(
    setup: ExperimentConfig,
    tasks: Sequence[_Task],
    workers: int,
    progress: Optional[Callable],
    chunksize: Optional[int],
) -> dict[SweepKey, RunMetrics]:
    from concurrent.futures import ProcessPoolExecutor

    if chunksize is None:
        # A few chunks per worker balances dispatch overhead (tasks are
        # ~100 ms..s each) against tail latency on uneven task lengths.
        chunksize = max(1, len(tasks) // (workers * 4))
        # Align chunks to whole configuration groups (the run length of
        # the leading config index, e.g. 4 for a four-algorithm paired
        # sweep): a worker that receives every algorithm of a
        # configuration samples it once and reuses the artifact, instead
        # of each worker resampling it for its slice of the group.
        group = 1
        first = tasks[0][0]
        for task in tasks[1:]:
            if task[0] != first:
                break
            group += 1
        if group > 1:
            chunksize = max(group, chunksize - chunksize % group)
    results: dict[SweepKey, RunMetrics] = {}
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(setup,),
    ) as pool:
        # ``map`` yields in submission order, so progress callbacks fire
        # in exactly the serial order even though execution interleaves.
        for key, metrics in pool.map(_run_task, tasks, chunksize=chunksize):
            results[key] = metrics
            if progress is not None:
                progress(key[0], Algorithm(key[1]), metrics)
    return results


def run_sweep(
    setup: ExperimentConfig,
    tasks: Sequence[tuple],
    *,
    workers: Optional[int] = None,
    progress: Optional[Callable] = None,
    chunksize: Optional[int] = None,
    overrides: Optional[Mapping[str, Any]] = None,
) -> dict[SweepKey, RunMetrics]:
    """Run a batch of ``(config_index, algorithm[, overrides])`` tasks.

    Returns ``{(config_index, algorithm.value): RunMetrics}`` with one
    entry per task.  The mapping's contents are independent of the worker
    count: parallel execution is bit-identical to serial because every
    simulation is a pure function of its task and the shared ``setup``.

    Parameters
    ----------
    setup:
        Shared experiment inputs.  An injected ``library`` is shipped to
        each worker once via the pool initializer.
    tasks:
        Sequence of ``(config_index, algorithm)`` or
        ``(config_index, algorithm, per_task_overrides)``.  Keys must be
        unique within one sweep.
    workers:
        See :func:`resolve_workers`.  With one worker (or when process
        pools are unavailable) the sweep runs serially in-process.
    progress:
        ``progress(config_index, algorithm, metrics)`` called once per
        completed task, always in task order.
    chunksize:
        Tasks per pool dispatch; defaults to ``len(tasks) / (4·workers)``.
    overrides:
        Spec overrides applied to every task (per-task overrides win).
    """
    normalized = _normalize_tasks(tasks, overrides)
    effective = resolve_workers(workers)
    if effective > 1 and len(normalized) > 1:
        try:
            return _run_parallel(
                setup, normalized, effective, progress, chunksize
            )
        except _POOL_UNAVAILABLE:
            pass  # no process pool on this platform: degrade to serial
    return _run_serial(setup, normalized, progress)
