"""Report generation: ASCII figure panels and a full markdown report.

The paper's Figure 6 and Figure 10 are sorted per-configuration speedup
curves; :func:`ascii_curve` renders the same panels in a terminal.
:func:`generate_report` runs the full evaluation (all figures) and writes
a self-contained markdown report plus a JSON archive of every number.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    fig6_main_comparison,
    fig7_extra_sites,
    fig8_server_scaling,
    fig9_relocation_period,
    fig10_tree_shape,
)
from repro.experiments.stats import paired_ratio, summarize


def ascii_curve(
    series: dict[str, Sequence[float]],
    height: int = 12,
    title: str = "",
) -> str:
    """Render sorted speedup series as an ASCII chart (Figure 6 style).

    Each named series is drawn with its own marker over a shared y-axis;
    x is the configuration rank.
    """
    if not series:
        raise ValueError("need at least one series")
    markers = "*o+x#@"
    arrays = {name: np.asarray(list(v), dtype=float) for name, v in series.items()}
    width = max(len(v) for v in arrays.values())
    if width == 0:
        raise ValueError("series are empty")
    top = max(v.max() for v in arrays.values())
    bottom = min(1.0, min(v.min() for v in arrays.values()))
    span = max(top - bottom, 1e-9)

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(sorted(arrays.items())):
        marker = markers[index % len(markers)]
        for x, value in enumerate(np.sort(values)):
            y = int(round((value - bottom) / span * (height - 1)))
            y = min(max(y, 0), height - 1)
            grid[height - 1 - y][x] = marker

    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        value = top - span * row_index / (height - 1)
        lines.append(f"{value:6.1f} |" + "".join(row))
    lines.append(" " * 7 + "+" + "-" * width)
    lines.append(
        " " * 8 + f"configurations sorted by speedup (n={width})"
    )
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}"
        for i, name in enumerate(sorted(arrays))
    )
    lines.append(" " * 8 + legend)
    return "\n".join(lines)


def generate_report(
    setup: Optional[ExperimentConfig] = None,
    out_dir: "str | Path | None" = None,
    echo=print,
) -> dict:
    """Run the evaluation and return (and optionally write) the report.

    ``setup`` is an :class:`~repro.experiments.config.ExperimentConfig`
    carrying both workload and report-scale knobs (``None``: the default
    config).  Returns a dict with ``markdown`` (the report text) and
    ``data`` (all numbers, JSON-serializable).  When ``out_dir`` is
    given, writes ``report.md`` and ``report.json`` there.
    """
    setup = ExperimentConfig() if setup is None else setup
    sections: list[str] = [
        "# Reproduction report — Adapting to Bandwidth Variations in "
        "Wide-Area Data Combination (ICDCS 1998)",
        "",
        f"- servers: {setup.num_servers}, images/server: "
        f"{setup.images_per_server}, tree: {setup.tree_shape}",
        f"- master seed: {setup.seed}, study seed: {setup.study_seed}",
        f"- figure 6 scale: {setup.n_configs} configurations",
        "",
    ]
    data: dict = {"setup": {
        "num_servers": setup.num_servers,
        "images_per_server": setup.images_per_server,
        "seed": setup.seed,
        "n_configs": setup.n_configs,
    }}

    echo(f"[report] figure 6 ({setup.n_configs} configurations)...")
    fig6 = fig6_main_comparison(
        setup, n_configs=setup.n_configs, workers=setup.workers
    )
    ratio_go = paired_ratio(fig6.global_speedups, fig6.one_shot_speedups)
    ratio_gl = paired_ratio(fig6.global_speedups, fig6.local_speedups)
    sections += [
        "## Figure 6 — speedup over download-all",
        "",
        "```",
        ascii_curve(
            {
                "global": fig6.global_speedups,
                "one-shot": fig6.one_shot_speedups,
                "local": fig6.local_speedups,
            },
            title="sorted per-configuration speedups",
        ),
        "",
        fig6.format_table(),
        "```",
        "",
        f"median global/one-shot ratio: {ratio_go} (paper ~1.40)",
        f"median global/local ratio: {ratio_gl} (paper ~1.25)",
        "",
    ]
    data["fig6"] = {
        "one_shot": summarize(fig6.one_shot_speedups),
        "local": summarize(fig6.local_speedups),
        "global": summarize(fig6.global_speedups),
        "mean_interarrival": fig6.mean_interarrival,
        "ratio_global_one_shot": asdict(ratio_go),
        "ratio_global_local": asdict(ratio_gl),
    }

    if setup.include_fig7:
        n = setup.configs_for("fig7")
        echo(f"[report] figure 7 ({n} configurations)...")
        fig7 = fig7_extra_sites(setup, n_configs=n, workers=setup.workers)
        sections += ["## Figure 7 — extra candidate sites", "", "```",
                     fig7.format_table(), "```", ""]
        data["fig7"] = {"ks": fig7.ks, "mean_speedups": fig7.mean_speedups}

    if setup.include_fig8:
        n = setup.configs_for("fig8")
        echo(f"[report] figure 8 ({n} configurations)...")
        fig8 = fig8_server_scaling(setup, n_configs=n, workers=setup.workers)
        sections += ["## Figure 8 — scaling", "", "```",
                     fig8.format_table(), "```", ""]
        data["fig8"] = {
            "server_counts": fig8.server_counts,
            "mean_speedups": fig8.mean_speedups,
        }

    if setup.include_fig9:
        n = setup.configs_for("fig9")
        echo(f"[report] figure 9 ({n} configurations)...")
        fig9 = fig9_relocation_period(
            setup, n_configs=n, workers=setup.workers
        )
        sections += ["## Figure 9 — relocation period", "", "```",
                     fig9.format_table(), "```", ""]
        data["fig9"] = {
            "periods": fig9.periods,
            "mean_speedups": fig9.mean_speedups,
        }

    if setup.include_fig10:
        n = setup.configs_for("fig10")
        echo(f"[report] figure 10 ({n} configurations)...")
        fig10 = fig10_tree_shape(setup, n_configs=n, workers=setup.workers)
        sections += [
            "## Figure 10 — combination order", "", "```",
            ascii_curve(
                {
                    "binary": fig10.global_binary,
                    "left-deep": fig10.global_left_deep,
                },
                title="global algorithm: sorted speedups by tree shape",
            ),
            "",
            fig10.format_table(),
            "```",
            "",
        ]
        data["fig10"] = {
            "global_binary_mean": fig10.mean(fig10.global_binary),
            "global_left_deep_mean": fig10.mean(fig10.global_left_deep),
            "local_binary_mean": fig10.mean(fig10.local_binary),
            "local_left_deep_mean": fig10.mean(fig10.local_left_deep),
        }

    markdown = "\n".join(sections)
    result = {"markdown": markdown, "data": data}

    if out_dir is not None:
        out_path = Path(out_dir)
        out_path.mkdir(parents=True, exist_ok=True)
        (out_path / "report.md").write_text(markdown)
        (out_path / "report.json").write_text(json.dumps(data, indent=2))
        echo(f"[report] wrote {out_path / 'report.md'} and report.json")
    return result
