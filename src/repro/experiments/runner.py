"""Runners: simulate algorithms over batches of configurations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.engine.config import Algorithm
from repro.engine.metrics import RunMetrics
from repro.engine.simulation import run_simulation
from repro.experiments.config import ExperimentConfig, build_spec
from repro.experiments.parallel import run_sweep


def run_configuration(
    setup: ExperimentConfig,
    config_index: int,
    algorithm: Algorithm,
    tracer=None,
    **overrides,
) -> RunMetrics:
    """Simulate one algorithm on one network configuration.

    Pass a :class:`repro.obs.Tracer` to record the run's event stream.
    Repeated calls for one ``(setup, config_index)`` reuse the build-once
    :class:`~repro.experiments.config.SampledConfig` artifact, so running
    the four algorithms back to back samples the configuration once.
    """
    spec = build_spec(setup, config_index, algorithm, **overrides)
    return run_simulation(spec, tracer=tracer)


@dataclass
class AlgorithmSummary:
    """Aggregated results of one algorithm over many configurations."""

    algorithm: str
    completion_times: list[float] = field(default_factory=list)
    interarrivals: list[float] = field(default_factory=list)
    relocations: list[int] = field(default_factory=list)

    def add(self, metrics: RunMetrics) -> None:
        self.completion_times.append(metrics.completion_time)
        self.interarrivals.append(metrics.mean_interarrival)
        self.relocations.append(metrics.relocations)

    def merge(self, other: "AlgorithmSummary") -> "AlgorithmSummary":
        """Append ``other``'s per-configuration results to this summary.

        Shards must cover *disjoint, consecutive* configuration ranges and
        be merged in configuration order — the paired-comparison semantics
        of :func:`speedup_series` rely on position ``i`` meaning the same
        configuration in every summary.  Returns ``self``.
        """
        if other.algorithm != self.algorithm:
            raise ValueError(
                f"cannot merge summary for {other.algorithm!r} into "
                f"summary for {self.algorithm!r}"
            )
        self.completion_times.extend(other.completion_times)
        self.interarrivals.extend(other.interarrivals)
        self.relocations.extend(other.relocations)
        return self

    @classmethod
    def from_parts(
        cls, parts: Iterable["AlgorithmSummary"]
    ) -> "AlgorithmSummary":
        """Concatenate sweep shards (in configuration order) into one summary."""
        parts = list(parts)
        if not parts:
            raise ValueError("from_parts needs at least one summary")
        merged = cls(parts[0].algorithm)
        for part in parts:
            merged.merge(part)
        return merged

    @property
    def mean_interarrival(self) -> float:
        """Mean of per-configuration mean inter-arrival times (§5 table)."""
        return float(np.mean(self.interarrivals))

    @property
    def mean_completion(self) -> float:
        return float(np.mean(self.completion_times))


def compare_algorithms(
    setup: ExperimentConfig,
    algorithms: Sequence[Algorithm],
    n_configs: int,
    progress: Optional[callable] = None,
    workers: Optional[int] = None,
    **overrides,
) -> dict[str, AlgorithmSummary]:
    """Run all ``algorithms`` on configurations ``0..n_configs-1``.

    Every algorithm sees the *same* configurations (same seeds), matching
    the paper's paired comparison.

    ``workers`` selects parallel execution (default: the ``REPRO_WORKERS``
    environment variable, else serial); results are assembled in
    configuration order regardless, so the returned summaries are
    bit-identical for any worker count.
    """
    summaries = {a.value: AlgorithmSummary(a.value) for a in algorithms}
    tasks = [
        (index, algorithm)
        for index in range(n_configs)
        for algorithm in algorithms
    ]
    results = run_sweep(
        setup, tasks, workers=workers, progress=progress, overrides=overrides
    )
    for index in range(n_configs):
        for algorithm in algorithms:
            summaries[algorithm.value].add(results[(index, algorithm.value)])
    return summaries


def speedup_series(
    target: AlgorithmSummary, baseline: AlgorithmSummary
) -> np.ndarray:
    """Per-configuration speedups of ``target`` over ``baseline``.

    This is the paper's headline metric: "the performance of an algorithm
    on a particular configuration is measured as the speedup it achieves
    over the download-all strategy" (Figure 6).
    """
    if len(target.completion_times) != len(baseline.completion_times):
        raise ValueError("summaries cover different numbers of configurations")
    return np.asarray(baseline.completion_times) / np.asarray(
        target.completion_times
    )
