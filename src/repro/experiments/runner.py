"""Runners: simulate algorithms over batches of configurations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.engine.config import Algorithm
from repro.engine.metrics import RunMetrics
from repro.engine.simulation import run_simulation
from repro.experiments.config import ExperimentSetup, build_spec


def run_configuration(
    setup: ExperimentSetup,
    config_index: int,
    algorithm: Algorithm,
    **overrides,
) -> RunMetrics:
    """Simulate one algorithm on one network configuration."""
    spec = build_spec(setup, config_index, algorithm, **overrides)
    return run_simulation(spec)


@dataclass
class AlgorithmSummary:
    """Aggregated results of one algorithm over many configurations."""

    algorithm: str
    completion_times: list[float] = field(default_factory=list)
    interarrivals: list[float] = field(default_factory=list)
    relocations: list[int] = field(default_factory=list)

    def add(self, metrics: RunMetrics) -> None:
        self.completion_times.append(metrics.completion_time)
        self.interarrivals.append(metrics.mean_interarrival)
        self.relocations.append(metrics.relocations)

    @property
    def mean_interarrival(self) -> float:
        """Mean of per-configuration mean inter-arrival times (§5 table)."""
        return float(np.mean(self.interarrivals))

    @property
    def mean_completion(self) -> float:
        return float(np.mean(self.completion_times))


def compare_algorithms(
    setup: ExperimentSetup,
    algorithms: Sequence[Algorithm],
    n_configs: int,
    progress: Optional[callable] = None,
    **overrides,
) -> dict[str, AlgorithmSummary]:
    """Run all ``algorithms`` on configurations ``0..n_configs-1``.

    Every algorithm sees the *same* configurations (same seeds), matching
    the paper's paired comparison.
    """
    summaries = {a.value: AlgorithmSummary(a.value) for a in algorithms}
    for index in range(n_configs):
        for algorithm in algorithms:
            metrics = run_configuration(setup, index, algorithm, **overrides)
            summaries[algorithm.value].add(metrics)
            if progress is not None:
                progress(index, algorithm, metrics)
    return summaries


def speedup_series(
    target: AlgorithmSummary, baseline: AlgorithmSummary
) -> np.ndarray:
    """Per-configuration speedups of ``target`` over ``baseline``.

    This is the paper's headline metric: "the performance of an algorithm
    on a particular configuration is measured as the speedup it achieves
    over the download-all strategy" (Figure 6).
    """
    if len(target.completion_times) != len(baseline.completion_times):
        raise ValueError("summaries cover different numbers of configurations")
    return np.asarray(baseline.completion_times) / np.asarray(
        target.completion_times
    )
