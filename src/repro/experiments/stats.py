"""Statistics helpers for experiment results.

The paper reports means and medians over 300 paired configurations; a
careful reproduction should also say how certain those numbers are.
This module provides paired-bootstrap confidence intervals and a compact
summary type used by the report generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class Interval:
    """A point estimate with a bootstrap confidence interval."""

    point: float
    low: float
    high: float
    confidence: float

    def __str__(self) -> str:
        return f"{self.point:.2f} [{self.low:.2f}, {self.high:.2f}]"


#: Statistics evaluated on the whole resample matrix at once via their
#: ``axis`` keyword instead of one Python call per resample row.  They
#: produce bit-identical values either way (same reduction, same order),
#: so the fast path is a pure speedup.
_AXIS_AWARE = (np.median, np.mean, np.min, np.max, np.sum)


def bootstrap(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.median,
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> Interval:
    """Percentile-bootstrap confidence interval for ``statistic``.

    Resampling is over configurations, matching the paper's unit of
    randomness (the trace-to-link assignment).  The common NumPy
    reductions (:data:`_AXIS_AWARE`) are applied to the whole
    ``(n_resamples, n)`` matrix in one vectorized call; any other
    statistic falls back to the row-at-a-time path with identical
    results.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence!r}")
    if n_resamples < 1:
        raise ValueError(f"n_resamples must be positive, got {n_resamples!r}")
    rng = np.random.default_rng(seed)
    point = float(statistic(data))
    if data.size == 1:
        return Interval(point, point, point, confidence)
    indices = rng.integers(0, data.size, size=(n_resamples, data.size))
    resamples = data[indices]
    if any(statistic is fast for fast in _AXIS_AWARE):
        stats = statistic(resamples, axis=1)
    else:
        stats = np.apply_along_axis(statistic, 1, resamples)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(stats, [alpha, 1.0 - alpha])
    return Interval(point, float(low), float(high), confidence)


def paired_ratio(
    numerators: Sequence[float],
    denominators: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.median,
    **kwargs,
) -> Interval:
    """Bootstrap CI of a statistic of per-configuration ratios.

    Used for the paper's "median global/one-shot speedup ratio": the
    pairing (same configuration for both algorithms) is preserved by
    resampling ratio values, not the two samples independently.
    """
    num = np.asarray(list(numerators), dtype=float)
    den = np.asarray(list(denominators), dtype=float)
    if num.shape != den.shape:
        raise ValueError("paired samples must have equal length")
    if np.any(den == 0):
        raise ValueError("denominator contains zero")
    return bootstrap(num / den, statistic=statistic, **kwargs)


def win_rate(a: Sequence[float], b: Sequence[float]) -> float:
    """Fraction of paired configurations where ``a`` beats ``b``."""
    a_arr = np.asarray(list(a), dtype=float)
    b_arr = np.asarray(list(b), dtype=float)
    if a_arr.shape != b_arr.shape:
        raise ValueError("paired samples must have equal length")
    if a_arr.size == 0:
        raise ValueError("empty sample")
    return float(np.mean(a_arr > b_arr))


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Plain five-number-ish summary for tables."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("empty sample")
    return {
        "mean": float(np.mean(data)),
        "median": float(np.median(data)),
        "min": float(np.min(data)),
        "max": float(np.max(data)),
        "p25": float(np.quantile(data, 0.25)),
        "p75": float(np.quantile(data, 0.75)),
    }
