"""Experiment harness: configurations, runners and figure reproduction.

The paper's evaluation (§4–§5) runs every placement algorithm over **300
network configurations**, each produced by assigning Internet bandwidth
traces uniformly at random to the links of a complete graph over the
participating hosts.  This package reproduces that methodology:

* :class:`~repro.experiments.config.ExperimentConfig` — the shared
  inputs (trace library, workload parameters, master seed) plus the
  report-scale knobs (the deprecated ``ExperimentSetup`` /
  ``ReportOptions`` aliases have been removed);
* :func:`~repro.experiments.runner.run_configuration` — one simulation of
  one algorithm on one configuration;
* :mod:`~repro.experiments.figures` — one reproduction function per paper
  figure (6 through 10) plus the §5 inter-arrival table, each returning a
  structured result that the benchmark harness prints.
"""

from repro.experiments.config import (
    ExperimentConfig,
    build_spec,
    make_configuration,
)
from repro.experiments.parallel import resolve_workers, run_sweep
from repro.experiments.runner import (
    AlgorithmSummary,
    compare_algorithms,
    run_configuration,
    speedup_series,
)
from repro.experiments.figures import (
    Fig6Result,
    Fig7Result,
    Fig8Result,
    Fig9Result,
    Fig10Result,
    fig6_main_comparison,
    fig7_extra_sites,
    fig8_server_scaling,
    fig9_relocation_period,
    fig10_tree_shape,
)

__all__ = [
    "AlgorithmSummary",
    "ExperimentConfig",
    "Fig10Result",
    "Fig6Result",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "build_spec",
    "compare_algorithms",
    "fig10_tree_shape",
    "fig6_main_comparison",
    "fig7_extra_sites",
    "fig8_server_scaling",
    "fig9_relocation_period",
    "make_configuration",
    "resolve_workers",
    "run_configuration",
    "run_sweep",
    "speedup_series",
]
