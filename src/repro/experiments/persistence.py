"""Persisting experiment results (JSON and CSV).

Sweeps over hundreds of configurations are expensive; these helpers
archive per-run metrics so analyses can be re-done without re-simulating.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Sequence, Union

from repro.engine.metrics import RelocationEvent, RunMetrics

PathLike = Union[str, Path]


def metrics_to_dict(metrics: RunMetrics, include_arrivals: bool = True) -> dict:
    """JSON-serializable form of one run's metrics."""
    payload = metrics.summary()
    if include_arrivals:
        payload["arrival_times"] = list(metrics.arrival_times)
    payload["relocation_events"] = [
        {
            "time": event.time,
            "actor": event.actor,
            "old_host": event.old_host,
            "new_host": event.new_host,
        }
        for event in metrics.relocation_events
    ]
    return payload


def metrics_from_dict(payload: dict) -> RunMetrics:
    """Rebuild :class:`RunMetrics` from :func:`metrics_to_dict` output.

    Accepts every summary schema version: version-1 payloads (no
    ``"schema"`` key) lack the trace-derived fields and version-2
    payloads lack the resilience counters; missing fields default to 0.
    """
    schema = payload.get("schema", 1)
    if schema not in (1, 2, 3):
        raise ValueError(f"unsupported metrics schema {schema!r}")
    metrics = RunMetrics(
        algorithm=payload["algorithm"],
        num_servers=payload["num_servers"],
        images=payload["images"],
        arrival_times=list(payload.get("arrival_times", [])),
        relocations=payload["relocations"],
        planner_runs=payload["planner_runs"],
        placements_installed=payload["placements_installed"],
        barrier_rounds=payload["barrier_rounds"],
        barrier_stall_seconds=payload["barrier_stall_seconds"],
        probes_sent=payload["probes_sent"],
        probe_bytes=payload["probe_bytes"],
        forwarded_messages=payload["forwarded_messages"],
        bytes_on_wire=payload["bytes_on_wire"],
        truncated=payload["truncated"],
        transfers=payload.get("transfers", 0),
        local_deliveries=payload.get("local_deliveries", 0),
        passive_measurements=payload.get("passive_measurements", 0),
        piggyback_entries_merged=payload.get("piggyback_entries_merged", 0),
        retransmissions=payload.get("retransmissions", 0),
        dropped_bytes=payload.get("dropped_bytes", 0.0),
        abandoned_messages=payload.get("abandoned_messages", 0),
        aborted_relocations=payload.get("aborted_relocations", 0),
        host_downtime_seconds=payload.get("host_downtime_seconds", 0.0),
        probe_timeouts=payload.get("probe_timeouts", 0),
        planner_fallbacks=payload.get("planner_fallbacks", 0),
    )
    for event in payload.get("relocation_events", []):
        metrics.relocation_events.append(
            RelocationEvent(
                event["time"], event["actor"], event["old_host"], event["new_host"]
            )
        )
    return metrics


def save_runs_json(runs: Iterable[RunMetrics], path: PathLike) -> None:
    """Archive a collection of runs as a JSON list."""
    payload = [metrics_to_dict(metrics) for metrics in runs]
    Path(path).write_text(json.dumps(payload, indent=2))


def load_runs_json(path: PathLike) -> list[RunMetrics]:
    """Load runs archived by :func:`save_runs_json`."""
    payload = json.loads(Path(path).read_text())
    return [metrics_from_dict(entry) for entry in payload]


#: Columns of the flat CSV export (one row per run).
CSV_FIELDS = (
    "schema",
    "algorithm",
    "num_servers",
    "images",
    "completion_time",
    "mean_interarrival",
    "relocations",
    "planner_runs",
    "placements_installed",
    "barrier_rounds",
    "barrier_stall_seconds",
    "probes_sent",
    "probe_bytes",
    "forwarded_messages",
    "bytes_on_wire",
    "truncated",
    "transfers",
    "local_deliveries",
    "passive_measurements",
    "piggyback_entries_merged",
    "retransmissions",
    "dropped_bytes",
    "abandoned_messages",
    "aborted_relocations",
    "host_downtime_seconds",
    "probe_timeouts",
    "planner_fallbacks",
)


def save_runs_csv(runs: Sequence[RunMetrics], path: PathLike) -> None:
    """One row per run; columns are :data:`CSV_FIELDS`."""
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=CSV_FIELDS)
        writer.writeheader()
        for metrics in runs:
            summary = metrics.summary()
            writer.writerow({key: summary[key] for key in CSV_FIELDS})
