"""The workload engine: N concurrent queries, one shared network.

:class:`WorkloadEngine` materializes a :class:`~repro.workload.spec.
WorkloadSpec`: it builds one :class:`~repro.net.network.Network`,
:class:`~repro.monitor.system.MonitoringSystem` and (optionally) one
:class:`~repro.faults.FaultInjector`, then launches each scheduled query
as an independent :class:`~repro.engine.runtime.Runtime` on top of them
via :func:`repro.engine.simulation.build_query`.  Queries contend for
the same NICs, links and fault timeline — which is the entire point —
while their actor ids are kept apart by per-query namespaces and their
metrics/trace events by ``query_id`` tags.

Single-query workloads run with an empty namespace and therefore follow
exactly the code path of :func:`~repro.engine.simulation.run_simulation`;
the identity test pins bit-equality of metrics and trace events (modulo
the ``query_id`` tag).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.engine.config import SimulationSpec
from repro.engine.metrics import RunMetrics
from repro.engine.runtime import Runtime
from repro.engine.simulation import build_query
from repro.faults import FaultInjector
from repro.fleet import FleetCoordinator
from repro.monitor.system import MonitoringSystem
from repro.net.host import Host
from repro.net.link import Link
from repro.net.network import Network
from repro.obs.events import RUN_END, RUN_META
from repro.obs.tracer import ScopedTracer, ensure_tracer
from repro.sim import Environment
from repro.workload.arrivals import (
    ClosedLoop,
    OpenLoop,
    arrival_rng,
    open_loop_times,
    think_seconds,
)
from repro.workload.overload import OverloadController
from repro.workload.sink import MetricsSink, QueryStats, note_slo
from repro.workload.spec import QueryClass, WorkloadSpec, query_id_for


@dataclass
class ScheduledQuery:
    """One slot of the workload schedule, before it launches."""

    query_id: str
    client_index: int
    ordinal: int
    qclass: QueryClass
    spec: SimulationSpec
    #: 0 for schedule slots; retries of deadline-aborted queries count
    #: up from 1 (their ids carry a ``.r{attempt}`` suffix).
    attempt: int = 0
    #: True when an open circuit breaker rerouted this query to the
    #: policy's degraded algorithm.
    degraded: bool = False


@dataclass
class QueryPlan:
    """A launched query: its runtime plus launch bookkeeping."""

    scheduled: ScheduledQuery
    #: ``None`` once the streaming path has finalized the query and
    #: released its runtime.
    runtime: Optional[Runtime]
    issued_at: float
    #: Set by the overload controller's deadline watchdog; the query
    #: finalizes truncated even though its ``done`` event settled.
    deadline_aborted: bool = False

    @property
    def query_id(self) -> str:
        return self.scheduled.query_id


@dataclass
class QueryResult:
    """One finished (or truncated) query."""

    query_id: str
    client_index: int
    ordinal: int
    class_name: str
    algorithm: str
    issued_at: float
    metrics: RunMetrics

    @property
    def latency(self) -> Optional[float]:
        if self.metrics.truncated or not self.metrics.arrival_times:
            return None
        return self.metrics.completion_time - self.issued_at


@dataclass
class WorkloadResult:
    """Everything one workload run produced.

    ``queries`` is empty when the streaming metrics path ran (per-query
    results are not materialized at scale); ``metrics`` is the
    :class:`~repro.workload.sink.MetricsSink` that accumulated the run,
    kept so sharded runs can merge sinks before summarizing.
    """

    spec: WorkloadSpec
    elapsed: float
    queries: list[QueryResult]
    fleet: dict[str, Any]
    metrics: Optional[MetricsSink] = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form: the fleet summary (it embeds the
        per-query summaries)."""
        return self.fleet


def build_schedule(spec: WorkloadSpec) -> list[ScheduledQuery]:
    """Every (client, ordinal) slot of the workload, in client order.

    A spec with a ``client_subset`` (one shard of a larger population)
    schedules only those clients, with identical per-client seeds and
    query ids to the full run.
    """
    schedule: list[ScheduledQuery] = []
    for client_index in spec.client_indices:
        mix = spec.mix_for(client_index)
        for ordinal, qclass in enumerate(mix):
            schedule.append(
                ScheduledQuery(
                    query_id=query_id_for(client_index, ordinal),
                    client_index=client_index,
                    ordinal=ordinal,
                    qclass=qclass,
                    spec=spec.query_spec(qclass, client_index, ordinal),
                )
            )
    return schedule


class WorkloadEngine:
    """Runs one :class:`WorkloadSpec` to completion."""

    def __init__(self, spec: WorkloadSpec, tracer=None) -> None:
        self.spec = spec
        self.tracer = ensure_tracer(tracer)
        self._injector: Optional[FaultInjector] = None

    # -- substrate -----------------------------------------------------
    def _build_substrate(
        self, env: Environment
    ) -> tuple[Network, MonitoringSystem]:
        spec = self.spec
        tracer = self.tracer
        network = Network(env, tracer=tracer)
        network.fluid_fast_path = spec.fluid_fast_path
        for host_name in spec.all_hosts:
            host = Host(
                env,
                host_name,
                disk_rate=spec.disk_rate,
                nic_capacity=spec.nic_capacity,
            )
            host.fluid_facilities = spec.fluid_fast_path
            network.add_host(host)
        links = spec.resolve_links()
        hosts = list(spec.all_hosts)
        for i, a in enumerate(hosts):
            for b in hosts[i + 1 :]:
                key = (a, b) if a < b else (b, a)
                network.add_link(
                    Link(a, b, links[key], startup_cost=spec.startup_cost)
                )
        monitoring = MonitoringSystem(network, spec.monitoring, tracer=tracer)
        if spec.seed_initial_snapshot:
            monitoring.seed_snapshot(0.0)
        return network, monitoring

    def _install_faults(
        self,
        env: Environment,
        network: Network,
        monitoring: MonitoringSystem,
        launched: list[QueryPlan],
    ) -> None:
        plan = self.spec.fault_plan
        if plan is None or plan.is_empty():
            return
        plan.validate_hosts(network.hosts.keys())
        injector = FaultInjector(plan, env, tracer=self.tracer)
        network.install_faults(injector)
        monitoring.faults = injector
        for query_plan in launched:
            if query_plan.runtime is not None:
                query_plan.runtime.faults = injector
        self._injector = injector
        injector.start()

    # -- the run -------------------------------------------------------
    def run(self) -> WorkloadResult:
        spec = self.spec
        tracer = self.tracer
        schedule = build_schedule(spec)
        sink = spec.build_metrics()
        streaming = sink.mode == "streaming"
        if not schedule:
            return WorkloadResult(
                spec=spec,
                elapsed=0.0,
                queries=[],
                fleet=sink.summary(0.0, scheduled=0),
                metrics=sink,
            )

        env = Environment()
        if tracer.enabled:
            env.trace_hook = tracer.kernel_hook
            tracer.meta.update(
                workload=True,
                num_clients=spec.num_clients,
                queries_per_client=spec.queries_per_client,
                scheduled_queries=len(schedule),
            )
        network, monitoring = self._build_substrate(env)
        network.observers.append(sink.observe)

        # Fleet-aware joint planning: one coordinator shared by every
        # query, consulted at each planning opportunity.  None keeps all
        # planners blind — the bit-identical default path.
        coordinator: Optional[FleetCoordinator] = None
        if spec.fleet_engaged:
            coordinator = FleetCoordinator(
                spec.fleet, sink=sink, clock=lambda: env.now
            )

        # A lone query runs un-namespaced so its execution is
        # bit-identical to run_simulation (see the identity test).
        # Overload protection forces namespacing: retries re-register
        # the same actor ids and must not collide.
        engaged = spec.overload_engaged
        single = len(schedule) == 1 and not engaged
        launched: list[QueryPlan] = []
        all_done = env.event()
        pending = len(schedule)

        def slot_resolved() -> None:
            nonlocal pending
            pending -= 1
            if pending == 0 and not all_done.triggered:
                all_done.succeed(env.now)

        def finalize(plan: QueryPlan, truncated: bool) -> None:
            """Feed one query into the sink and release its runtime.

            The streaming path calls this eagerly from the query's done
            callback, so per-query state (runtime, network/monitor
            accounting slices) is freed as the fleet progresses instead
            of accumulating until the end of the run.
            """
            runtime = plan.runtime
            if runtime is None:
                return
            metrics = runtime.finalize_metrics(truncated=truncated)
            qid = plan.query_id
            if tracer.enabled:
                scoped = ScopedTracer(tracer, query_id=qid)
                scoped.emit(
                    RUN_END,
                    env.now,
                    truncated=metrics.truncated,
                    images_delivered=len(metrics.arrival_times),
                    completion_time=metrics.completion_time,
                )
            stats = QueryStats.from_metrics(
                qid, plan.scheduled.qclass.name, plan.issued_at, metrics
            )
            sink.query_finished(stats)
            note_slo(sink, stats, plan.scheduled.qclass.slo_target)
            plan.runtime = None
            network.query_stats.pop(qid, None)
            monitoring.query_stats.pop(qid, None)

        def note_done(plan: QueryPlan) -> None:
            def _completed(_event) -> None:
                if coordinator is not None:
                    coordinator.query_done(plan.query_id)
                if streaming:
                    finalize(plan, truncated=plan.deadline_aborted)
                if controller is None:
                    slot_resolved()
                else:
                    controller.query_finished(plan)

            plan.runtime.done.callbacks.append(_completed)

        def launch(scheduled: ScheduledQuery) -> QueryPlan:
            qid = scheduled.query_id
            namespace = "" if single else qid + "/"
            scoped = ScopedTracer(tracer, query_id=qid)
            qspec = scheduled.spec
            if scheduled.degraded:
                sink.resilience_event("degraded", scheduled.qclass.name)
            if scoped.enabled:
                extra = (
                    {} if single else {"query_class": scheduled.qclass.name}
                )
                if scheduled.qclass.slo_target is not None:
                    extra["slo"] = scheduled.qclass.slo_target
                if scheduled.degraded:
                    extra["degraded"] = True
                scoped.emit(
                    RUN_META,
                    env.now,
                    algorithm=qspec.algorithm.value,
                    num_servers=qspec.num_servers,
                    images=qspec.images_per_server,
                    tree_shape=qspec.tree_shape,
                    hosts=list(qspec.all_hosts),
                    **extra,
                )
            runtime = build_query(
                qspec,
                env,
                network,
                monitoring,
                tracer=scoped,
                namespace=namespace,
                query_id=qid,
                planner_wrapper=(
                    coordinator.wrapper_for(qid)
                    if coordinator is not None
                    else None
                ),
            )
            if coordinator is not None:
                coordinator.query_launched(
                    qid,
                    runtime,
                    class_name=scheduled.qclass.name,
                    slo=scheduled.qclass.slo_target,
                )
            if self._injector is not None:
                runtime.faults = self._injector
            plan = QueryPlan(
                scheduled=scheduled, runtime=runtime, issued_at=env.now
            )
            sink.query_started(qid, scheduled.qclass.name, env.now)
            note_done(plan)
            launched.append(plan)
            return plan

        controller: Optional[OverloadController] = None
        if engaged:
            controller = OverloadController(
                env,
                spec.overload_policy,
                spec.seed,
                tracer,
                sink,
                launch=launch,
                slot_resolved=slot_resolved,
            )

        def submit(scheduled: ScheduledQuery):
            """Route one slot: through admission when engaged, else a
            direct launch.  Returns what sessions wait on — the
            submission (completion event) or the plan (runtime.done)."""
            if controller is None:
                return launch(scheduled)
            return controller.submit(scheduled)

        # Group the schedule per client and split eager t=0 launches
        # (built before the fault timeline starts, mirroring
        # build_simulation's construction order) from deferred ones.
        by_client: dict[int, list[ScheduledQuery]] = {}
        for scheduled in schedule:
            by_client.setdefault(scheduled.client_index, []).append(scheduled)

        sessions: list[tuple[int, Any, list[ScheduledQuery]]] = []
        spawner_jobs: list[tuple[int, list[tuple[float, ScheduledQuery]]]] = []
        if isinstance(spec.arrivals, ClosedLoop):
            for client_index in sorted(by_client):
                slots = by_client[client_index]
                first = submit(slots[0])
                if len(slots) > 1:
                    sessions.append((client_index, first, slots[1:]))
        else:
            assert isinstance(spec.arrivals, OpenLoop)
            for client_index in sorted(by_client):
                slots = by_client[client_index]
                rng = arrival_rng(spec.seed, client_index)
                times = open_loop_times(spec.arrivals, len(slots), rng)
                deferred: list[tuple[float, ScheduledQuery]] = []
                for at, scheduled in zip(times, slots):
                    if at == 0.0:
                        submit(scheduled)
                    else:
                        deferred.append((at, scheduled))
                if deferred:
                    spawner_jobs.append((client_index, deferred))

        self._install_faults(env, network, monitoring, launched)
        if controller is not None:
            controller.injector = self._injector

        def done_event_of(previous):
            """What a closed-loop session waits on before its next slot."""
            if controller is None:
                return previous.runtime.done
            return previous.completion

        def closed_session(client_index, first, slots):
            rng = arrival_rng(spec.seed, client_index)
            previous = first
            for scheduled in slots:
                yield done_event_of(previous)
                think = think_seconds(spec.arrivals, rng)
                if think > 0:
                    yield env.timeout(think)
                previous = submit(scheduled)

        def open_spawner(deferred):
            for at, scheduled in deferred:
                if at > env.now:
                    yield env.timeout(at - env.now)
                submit(scheduled)

        for client_index, first_plan, slots in sessions:
            env.process(
                closed_session(client_index, first_plan, slots),
                name=f"wl-client-c{client_index}",
            )
        for client_index, deferred in spawner_jobs:
            env.process(
                open_spawner(deferred), name=f"wl-client-c{client_index}"
            )

        stop = env.any_of([all_done, env.timeout(spec.max_sim_time)])
        env.run(until=stop)

        results: list[QueryResult] = []
        if streaming:
            # Completed queries were finalized eagerly; whatever is left
            # hit the simulation-time wall.
            for plan in launched:
                runtime = plan.runtime
                if runtime is not None:
                    finalize(plan, truncated=not runtime.finished)
        else:
            for plan in launched:
                runtime = plan.runtime
                metrics = runtime.finalize_metrics(
                    truncated=plan.deadline_aborted or not runtime.finished
                )
                if tracer.enabled:
                    scoped = ScopedTracer(tracer, query_id=plan.query_id)
                    scoped.emit(
                        RUN_END,
                        env.now,
                        truncated=metrics.truncated,
                        images_delivered=len(metrics.arrival_times),
                        completion_time=metrics.completion_time,
                    )
                scheduled = plan.scheduled
                results.append(
                    QueryResult(
                        query_id=plan.query_id,
                        client_index=scheduled.client_index,
                        ordinal=scheduled.ordinal,
                        class_name=scheduled.qclass.name,
                        algorithm=scheduled.spec.algorithm.value,
                        issued_at=plan.issued_at,
                        metrics=metrics,
                    )
                )
                stats = QueryStats.from_metrics(
                    plan.query_id,
                    scheduled.qclass.name,
                    plan.issued_at,
                    metrics,
                )
                sink.query_finished(stats)
                note_slo(sink, stats, scheduled.qclass.slo_target)

        fleet = sink.summary(env.now, scheduled=len(schedule))
        return WorkloadResult(
            spec=spec,
            elapsed=env.now,
            queries=results,
            fleet=fleet,
            metrics=sink,
        )


def run_workload(spec: WorkloadSpec, tracer=None) -> WorkloadResult:
    """Run one workload to completion (the one-call entry point)."""
    return WorkloadEngine(spec, tracer=tracer).run()
