"""The MetricsSink funnel: one API for live and replayed fleet metrics.

Before this module the live :class:`~repro.workload.engine.WorkloadEngine`
and the :func:`fleet_from_trace` replay were parallel constructions that
could drift.  Now both feed one protocol:

* :meth:`MetricsSink.query_started` when a query launches,
* :meth:`MetricsSink.query_finished` with its :class:`QueryStats`,
* :meth:`MetricsSink.link_transfer` for every wire transfer,
* :meth:`MetricsSink.summary` to produce the fleet summary dict, and
* :meth:`MetricsSink.merge` to fold sinks from sharded runs together.

Two implementations sit behind the protocol, chosen by
:func:`fleet_metrics_for`:

:class:`ExactFleetMetrics` (``workload_schema: 1``)
    Stores every :class:`QueryStats` and funnels into
    :func:`~repro.workload.metrics.build_fleet_summary` — byte-identical
    to the pre-sink summaries, used below the exactness threshold.

:class:`StreamingFleetMetrics` (``workload_schema: 2``)
    O(classes + links + clients) memory regardless of query count:
    latency percentiles come from mergeable
    :class:`~repro.workload.sketch.QuantileSketch` histograms (fleet and
    per class), per-client accounting is two flat arrays (exact count
    and latency sum per client, enough for Jain fairness), link usage is
    bounded counters with per-*class* byte attribution, and
    ``bytes_on_wire`` is the link-observed total (each wire transfer
    counted once) rather than the per-query metric sum.

Merging either implementation is order-invariant: integer counts add,
float totals go through :class:`~repro.workload.sketch.OrderFreeSum`,
and the exact path re-sorts its stats into canonical (issue time,
client, ordinal) order once any merge has happened.  Shards are expected
to partition *clients* (see :func:`repro.workload.sweep.shard_clients`),
which keeps per-query and per-client attributions disjoint across
shards.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional, Protocol, Sequence

import numpy as np

from repro.engine.metrics import RunMetrics
from repro.fleet.counters import CoordinationCounters
from repro.obs.events import (
    BREAKER_CLOSE,
    BREAKER_OPEN,
    FLEET_CLAIM,
    FLEET_DENY,
    FLEET_GRANT,
    FLEET_REBALANCE,
    LINK_TRANSFER,
    PLANNER_SEARCH,
    QUERY_DEADLINE_ABORT,
    QUERY_QUEUED,
    QUERY_RETRY,
    QUERY_SHED,
    RELOCATION,
    RELOCATION_ABORT,
    RETRY_BUDGET_EXHAUSTED,
    RUN_END,
    RUN_META,
)
from repro.obs.summary import query_records
from repro.workload.overload import ResilienceCounters
from repro.workload.sketch import OrderFreeSum, QuantileSketch
from repro.workload.spec import client_of

#: Fleets scheduling at most this many queries default to the exact
#: (schema-1) metrics path; larger fleets stream (schema 2).
DEFAULT_EXACT_THRESHOLD = 1000

#: Default sketch accuracy for the streaming path (1% relative error).
DEFAULT_RELATIVE_ERROR = 0.01

#: Record types that are trace framing, not simulation events.
_FRAME_TYPES = frozenset({"trace.header", "trace.footer", "trace.segment"})


def client_index_of(query_id: str) -> int:
    """The integer client index encoded in a ``"c{i}:{ordinal}"`` id.

    Retry attempts (``"c{i}:{ordinal}.r{n}"``) belong to the same client
    as the original submission.
    """
    return int(query_id.split(":", 1)[0][1:])


def _stats_sort_key(stats: "QueryStats") -> tuple[float, int, int, str]:
    head, _, tail = stats.query_id.partition(":")
    ordinal = tail.partition(".")[0]
    return (stats.issued_at, int(head[1:]), int(ordinal or 0), stats.query_id)


@dataclass(frozen=True)
class QueryStats:
    """One query's finished contribution, decoupled from RunMetrics.

    This is the record that crosses the sink API (and process pipes in
    sharded runs): small, flat and picklable, carrying exactly the
    fields the fleet summary needs.
    """

    query_id: str
    class_name: str
    algorithm: str
    issued_at: float
    #: Last arrival instant; ``None`` when nothing arrived.
    completion_time: Optional[float]
    images_delivered: int
    truncated: bool
    relocations: int
    aborted_relocations: int
    bytes_on_wire: float
    #: Planner-effort totals (trailing defaults keep old pickles valid).
    planner_rounds: int = 0
    planner_candidates: int = 0
    planner_links_queried: int = 0

    @property
    def finished(self) -> bool:
        return not self.truncated

    @property
    def latency(self) -> Optional[float]:
        if self.truncated or self.completion_time is None:
            return None
        return self.completion_time - self.issued_at

    @classmethod
    def from_metrics(
        cls,
        query_id: str,
        class_name: str,
        issued_at: float,
        metrics: RunMetrics,
    ) -> "QueryStats":
        return cls(
            query_id=query_id,
            class_name=class_name,
            algorithm=metrics.algorithm,
            issued_at=issued_at,
            completion_time=(
                metrics.completion_time if metrics.arrival_times else None
            ),
            images_delivered=len(metrics.arrival_times),
            truncated=metrics.truncated,
            relocations=metrics.relocations,
            aborted_relocations=metrics.aborted_relocations,
            bytes_on_wire=metrics.bytes_on_wire,
            planner_rounds=metrics.planner_rounds,
            planner_candidates=metrics.planner_candidates,
            planner_links_queried=metrics.planner_links_queried,
        )


class MetricsSink(Protocol):
    """What the engine and the replay reader feed fleet metrics through."""

    #: ``"exact"`` or ``"streaming"``; also tags the summary dict.
    mode: str

    def query_started(
        self, query_id: str, class_name: str, issued_at: float
    ) -> None: ...

    def query_finished(self, stats: QueryStats) -> None: ...

    def link_transfer(
        self,
        src_host: str,
        dst_host: str,
        wire_bytes: float,
        busy_seconds: float,
        query_id: Optional[str] = None,
    ) -> None: ...

    def resilience_event(
        self,
        kind: str,
        class_name: Optional[str] = None,
        host: Optional[str] = None,
        value: Any = None,
    ) -> None: ...

    def coordination_event(
        self,
        kind: str,
        class_name: Optional[str] = None,
        link: Optional[str] = None,
        value: Any = None,
    ) -> None: ...

    def merge(self, other: "MetricsSink") -> "MetricsSink": ...

    def summary(
        self, elapsed: float, scheduled: Optional[int] = None
    ) -> dict[str, Any]: ...


class _FleetMetricsBase:
    """Shared plumbing: network-observer adapter, resilience counters
    and order-free folding."""

    def resilience_event(
        self,
        kind: str,
        class_name: Optional[str] = None,
        host: Optional[str] = None,
        value: Any = None,
    ) -> None:
        """Record one overload-protection transition (see
        :class:`~repro.workload.overload.ResilienceCounters`)."""
        self._resilience.note(kind, class_name=class_name, host=host, value=value)

    @property
    def resilience(self) -> ResilienceCounters:
        return self._resilience

    def coordination_event(
        self,
        kind: str,
        class_name: Optional[str] = None,
        link: Optional[str] = None,
        value: Any = None,
    ) -> None:
        """Record one fleet-coordination transition (see
        :class:`~repro.fleet.counters.CoordinationCounters`)."""
        self._coordination.note(kind, class_name=class_name, link=link, value=value)

    @property
    def coordination(self) -> CoordinationCounters:
        return self._coordination

    def observe(self, observation) -> None:
        """Adapter matching the :class:`~repro.net.network.Network`
        observer signature."""
        self.link_transfer(
            observation.src_host,
            observation.dst_host,
            observation.wire_bytes,
            observation.finished - observation.started,
            observation.query_id,
        )

    @staticmethod
    def merged(parts: "Sequence[MetricsSink]") -> "MetricsSink":
        """Fold non-empty ``parts`` into the first one, in given order.

        Because every sink merge is order-invariant, any permutation of
        ``parts`` produces an identical sink (pinned by tests).
        """
        if not parts:
            raise ValueError("merged() needs at least one sink")
        head = parts[0]
        for other in parts[1:]:
            head.merge(other)
        return head


class _LinkAccumulator:
    """Per-link counters whose float totals merge order-invariantly."""

    __slots__ = ("bytes", "busy_seconds", "transfers", "attributed")

    def __init__(self) -> None:
        self.bytes = OrderFreeSum()
        self.busy_seconds = OrderFreeSum()
        self.transfers = 0
        #: Attribution key (query id or class name) -> bytes.  Keys are
        #: expected to be shard-disjoint (client-hash sharding), so the
        #: per-key floats are plain sums.
        self.attributed: dict[str, float] = {}

    def note(
        self, wire_bytes: float, seconds: float, key: Optional[str]
    ) -> None:
        self.bytes.add(wire_bytes)
        self.busy_seconds.add(seconds)
        self.transfers += 1
        if key is not None:
            self.attributed[key] = self.attributed.get(key, 0.0) + wire_bytes

    def merge(self, other: "_LinkAccumulator") -> None:
        self.bytes.merge(other.bytes)
        self.busy_seconds.merge(other.busy_seconds)
        self.transfers += other.transfers
        for key, value in other.attributed.items():
            self.attributed[key] = self.attributed.get(key, 0.0) + value


class ExactFleetMetrics(_FleetMetricsBase):
    """The exact (schema-1) sink: keeps every QueryStats.

    Summaries are byte-identical to the pre-sink implementation for
    unmerged (single-process) runs; once shards have been merged the
    stats re-sort into canonical issue order so the result is the same
    whichever order the shards arrived in.
    """

    mode = "exact"

    def __init__(self) -> None:
        self._stats: list[QueryStats] = []
        self._links: dict[tuple[str, str], _LinkAccumulator] = {}
        self._resilience = ResilienceCounters()
        self._coordination = CoordinationCounters()
        self._was_merged = False

    def query_started(
        self, query_id: str, class_name: str, issued_at: float
    ) -> None:
        pass  # launch order is implied by query_finished order

    def query_finished(self, stats: QueryStats) -> None:
        self._stats.append(stats)
        self._coordination.note_effort(
            stats.planner_rounds,
            stats.planner_candidates,
            stats.planner_links_queried,
        )

    def link_transfer(
        self,
        src_host: str,
        dst_host: str,
        wire_bytes: float,
        busy_seconds: float,
        query_id: Optional[str] = None,
    ) -> None:
        key = (
            (src_host, dst_host)
            if src_host < dst_host
            else (dst_host, src_host)
        )
        usage = self._links.get(key)
        if usage is None:
            usage = self._links[key] = _LinkAccumulator()
        usage.note(wire_bytes, busy_seconds, query_id)

    def merge(self, other: "ExactFleetMetrics") -> "ExactFleetMetrics":
        if not isinstance(other, ExactFleetMetrics):
            raise TypeError(
                f"cannot merge {type(other).__name__} into ExactFleetMetrics"
            )
        self._stats.extend(other._stats)
        for key, usage in other._links.items():
            mine = self._links.get(key)
            if mine is None:
                self._links[key] = usage
            else:
                mine.merge(usage)
        self._resilience.merge(other._resilience)
        self._coordination.merge(other._coordination)
        self._was_merged = True
        return self

    @property
    def stats(self) -> tuple[QueryStats, ...]:
        return tuple(self._stats)

    def summary(
        self, elapsed: float, scheduled: Optional[int] = None
    ) -> dict[str, Any]:
        from repro.workload.metrics import LinkUsage, build_fleet_summary

        stats = self._stats
        if self._was_merged:
            stats = sorted(stats, key=_stats_sort_key)
        links: dict[tuple[str, str], LinkUsage] = {}
        for key in sorted(self._links):
            acc = self._links[key]
            links[key] = LinkUsage(
                bytes=acc.bytes.value,
                busy_seconds=acc.busy_seconds.value,
                transfers=acc.transfers,
                by_query=dict(acc.attributed),
            )
        payload = build_fleet_summary(
            stats, links, elapsed, scheduled=scheduled
        )
        if self._resilience.engaged:
            # Evidence-driven: the block appears only when protection
            # actually acted, so a defaults-off run (and its replay,
            # which cannot see the spec) stays bit-identical.
            payload["resilience"] = self._resilience.block(
                launched=len(stats),
                completed=sum(1 for s in stats if s.finished),
                elapsed=elapsed,
            )
        if self._coordination.engaged:
            # Same evidence-driven gating: only fleet-coordination events
            # (claim/grant/deny/rebalance) surface the block, so blind
            # per-query planning keeps its summary bit-identical.
            payload["fleet"] = self._coordination.block()
        return payload


class _ClassStats:
    """Per-query-class streaming counters."""

    __slots__ = ("launched", "completed", "truncated", "sketch")

    def __init__(self, relative_error: float) -> None:
        self.launched = 0
        self.completed = 0
        self.truncated = 0
        self.sketch = QuantileSketch(relative_error)

    def merge(self, other: "_ClassStats") -> None:
        self.launched += other.launched
        self.completed += other.completed
        self.truncated += other.truncated
        self.sketch.merge(other.sketch)


class StreamingFleetMetrics(_FleetMetricsBase):
    """The streaming (schema-2) sink: flat memory in the query count.

    State is O(classes + links + clients): quantile sketches for the
    fleet and each class, two flat per-client arrays (completed count
    and latency sum — exact client means for Jain fairness), bounded
    per-link counters with per-class byte attribution, and a small
    in-flight map (query id -> class) that empties as queries finish.
    """

    mode = "streaming"

    def __init__(
        self,
        num_clients: int,
        relative_error: float = DEFAULT_RELATIVE_ERROR,
    ) -> None:
        if num_clients < 0:
            raise ValueError("num_clients must be non-negative")
        self.num_clients = int(num_clients)
        self.relative_error = float(relative_error)
        self._fleet = QuantileSketch(self.relative_error)
        self._classes: dict[str, _ClassStats] = {}
        self._client_launched = np.zeros(self.num_clients, dtype=np.int64)
        self._client_completed = np.zeros(self.num_clients, dtype=np.int64)
        self._client_latency_sum = np.zeros(self.num_clients, dtype=np.float64)
        self._launched = 0
        self._completed = 0
        self._truncated = 0
        self._relocations = 0
        self._aborted_relocations = 0
        self._links: dict[tuple[str, str], _LinkAccumulator] = {}
        self._inflight: dict[str, str] = {}
        self._resilience = ResilienceCounters()
        self._coordination = CoordinationCounters()

    def _class(self, name: str) -> _ClassStats:
        stats = self._classes.get(name)
        if stats is None:
            stats = self._classes[name] = _ClassStats(self.relative_error)
        return stats

    def query_started(
        self, query_id: str, class_name: str, issued_at: float
    ) -> None:
        self._launched += 1
        self._class(class_name).launched += 1
        self._client_launched[client_index_of(query_id)] += 1
        self._inflight[query_id] = class_name

    def query_finished(self, stats: QueryStats) -> None:
        self._inflight.pop(stats.query_id, None)
        cls = self._class(stats.class_name)
        if stats.truncated:
            self._truncated += 1
            cls.truncated += 1
        else:
            self._completed += 1
            cls.completed += 1
        latency = stats.latency
        if latency is not None:
            self._fleet.add(latency)
            cls.sketch.add(latency)
            index = client_index_of(stats.query_id)
            self._client_completed[index] += 1
            self._client_latency_sum[index] += latency
        self._relocations += stats.relocations
        self._aborted_relocations += stats.aborted_relocations
        self._coordination.note_effort(
            stats.planner_rounds,
            stats.planner_candidates,
            stats.planner_links_queried,
        )

    def link_transfer(
        self,
        src_host: str,
        dst_host: str,
        wire_bytes: float,
        busy_seconds: float,
        query_id: Optional[str] = None,
    ) -> None:
        key = (
            (src_host, dst_host)
            if src_host < dst_host
            else (dst_host, src_host)
        )
        usage = self._links.get(key)
        if usage is None:
            usage = self._links[key] = _LinkAccumulator()
        class_name = (
            self._inflight.get(query_id) if query_id is not None else None
        )
        usage.note(wire_bytes, busy_seconds, class_name)

    def merge(self, other: "StreamingFleetMetrics") -> "StreamingFleetMetrics":
        if not isinstance(other, StreamingFleetMetrics):
            raise TypeError(
                f"cannot merge {type(other).__name__} into "
                "StreamingFleetMetrics"
            )
        if other.num_clients != self.num_clients:
            raise ValueError(
                "cannot merge sinks over different client populations: "
                f"{self.num_clients} vs {other.num_clients}"
            )
        if other.relative_error != self.relative_error:
            raise ValueError(
                "cannot merge sinks with different sketch accuracy: "
                f"{self.relative_error} vs {other.relative_error}"
            )
        self._fleet.merge(other._fleet)
        for name, cls in other._classes.items():
            mine = self._classes.get(name)
            if mine is None:
                self._classes[name] = cls
            else:
                mine.merge(cls)
        self._client_launched += other._client_launched
        self._client_completed += other._client_completed
        self._client_latency_sum += other._client_latency_sum
        self._launched += other._launched
        self._completed += other._completed
        self._truncated += other._truncated
        self._relocations += other._relocations
        self._aborted_relocations += other._aborted_relocations
        for key, usage in other._links.items():
            mine_link = self._links.get(key)
            if mine_link is None:
                self._links[key] = usage
            else:
                mine_link.merge(usage)
        self._inflight.update(other._inflight)
        self._resilience.merge(other._resilience)
        self._coordination.merge(other._coordination)
        return self

    def _sketch_block(self, sketch: QuantileSketch) -> dict[str, Any]:
        return {
            "count": sketch.count,
            "mean": sketch.mean,
            "p50": sketch.percentile(50),
            "p95": sketch.percentile(95),
            "p99": sketch.percentile(99),
            "max": sketch.max,
        }

    def summary(
        self, elapsed: float, scheduled: Optional[int] = None
    ) -> dict[str, Any]:
        from repro.workload.metrics import STREAMING_SCHEMA, jain_index

        mask = self._client_completed > 0
        client_means = (
            self._client_latency_sum[mask] / self._client_completed[mask]
        )
        link_block: dict[str, Any] = {}
        for (a, b) in sorted(self._links):
            usage = self._links[(a, b)]
            busy = usage.busy_seconds.value
            link_block[f"{a}--{b}"] = {
                "bytes": usage.bytes.value,
                "busy_seconds": busy,
                "transfers": usage.transfers,
                "utilization": (busy / elapsed) if elapsed > 0 else 0.0,
                "classes": {
                    name: usage.attributed[name]
                    for name in sorted(usage.attributed)
                },
            }
        bytes_on_wire = math.fsum(
            self._links[key].bytes.value for key in sorted(self._links)
        )
        payload = {
            "workload_schema": STREAMING_SCHEMA,
            "mode": self.mode,
            "relative_error": self.relative_error,
            "elapsed": elapsed,
            "scheduled": self._launched if scheduled is None else scheduled,
            "launched": self._launched,
            "completed": self._completed,
            "truncated": self._truncated,
            "latency": self._sketch_block(self._fleet),
            "fairness_jain": jain_index(client_means.tolist()),
            "per_class": {
                name: {
                    "launched": cls.launched,
                    "completed": cls.completed,
                    "truncated": cls.truncated,
                    "latency": self._sketch_block(cls.sketch),
                }
                for name, cls in sorted(self._classes.items())
            },
            "clients": {
                "total": self.num_clients,
                "active": int((self._client_launched > 0).sum()),
            },
            "relocations": {
                "total": self._relocations,
                "per_query_mean": (
                    (self._relocations / self._launched)
                    if self._launched
                    else 0.0
                ),
                "aborted": self._aborted_relocations,
            },
            "bytes_on_wire": bytes_on_wire,
            "links": link_block,
        }
        if self._resilience.engaged:
            payload["resilience"] = self._resilience.block(
                launched=self._launched,
                completed=self._completed,
                elapsed=elapsed,
            )
        if self._coordination.engaged:
            payload["fleet"] = self._coordination.block()
        return payload


def fleet_metrics_for(
    *,
    scheduled: int,
    num_clients: int,
    mode: Optional[str] = None,
    exact_threshold: int = DEFAULT_EXACT_THRESHOLD,
    relative_error: float = DEFAULT_RELATIVE_ERROR,
) -> MetricsSink:
    """The sink for a fleet: exact below the threshold, streaming above.

    ``mode`` forces ``"exact"`` or ``"streaming"`` regardless of size;
    ``None`` selects by ``scheduled <= exact_threshold``.
    """
    if mode not in (None, "exact", "streaming"):
        raise ValueError(f"unknown metrics mode {mode!r}")
    if mode == "exact" or (mode is None and scheduled <= exact_threshold):
        return ExactFleetMetrics()
    return StreamingFleetMetrics(num_clients, relative_error=relative_error)


def merge_sinks(parts: Sequence[MetricsSink]) -> MetricsSink:
    """Fold shard sinks into one; the result is order-invariant."""
    return _FleetMetricsBase.merged(parts)


# -- replay ------------------------------------------------------------


def _peek_header(
    records: Iterable[dict[str, Any]],
) -> tuple[dict[str, Any], Iterator[dict[str, Any]]]:
    """The trace-header meta (``{}`` if absent) and a rewound iterator."""
    iterator = iter(records)
    first = next(iterator, None)
    if first is None:
        return {}, iter(())

    def rewound() -> Iterator[dict[str, Any]]:
        yield first
        yield from iterator

    meta = (
        first.get("meta", {})
        if first.get("type") in ("trace.header", "trace.segment")
        else {}
    )
    return meta, rewound()


#: Trace event type -> resilience-counter kind, for replay.
_RESILIENCE_EVENTS = {
    QUERY_SHED: "shed",
    QUERY_QUEUED: "queued",
    QUERY_DEADLINE_ABORT: "deadline_abort",
    QUERY_RETRY: "retry",
    RETRY_BUDGET_EXHAUSTED: "retry_budget_exhausted",
    BREAKER_OPEN: "breaker_open",
    BREAKER_CLOSE: "breaker_close",
}


def _replay_resilience(
    metrics: MetricsSink, rtype: str, record: dict[str, Any]
) -> None:
    """Feed one overload-protection trace event into the sink."""
    kind = _RESILIENCE_EVENTS.get(rtype)
    if kind is None:
        return
    metrics.resilience_event(
        kind,
        class_name=record.get("query_class"),
        host=record.get("host"),
        value=record.get("depth"),
    )


#: Trace event type -> coordination-counter kind, for replay.
_COORDINATION_EVENTS = {
    FLEET_CLAIM: "claim",
    FLEET_GRANT: "grant",
    FLEET_DENY: "deny",
    FLEET_REBALANCE: "rebalance",
}


def _replay_coordination(
    metrics: MetricsSink, rtype: str, record: dict[str, Any]
) -> bool:
    """Feed one fleet-coordination trace event into the sink.

    Returns True when the record was a coordination event, so callers
    can stop matching.  ``grant`` carries the granted move count and
    ``deny`` its bottleneck bucket, mirroring the live
    :class:`~repro.fleet.coordinator.FleetCoordinator` calls exactly.
    """
    kind = _COORDINATION_EVENTS.get(rtype)
    if kind is None:
        return False
    metrics.coordination_event(
        kind,
        class_name=record.get("query_class"),
        link=record.get("bottleneck"),
        value=record.get("moves"),
    )
    return True


def note_slo(
    metrics: MetricsSink, stats: QueryStats, slo: Optional[float]
) -> None:
    """Record one completed query against its class SLO target.

    The same comparison runs in the live engine and in both replay
    paths, so attainment reconciles bit-exactly.
    """
    if slo is None:
        return
    latency = stats.latency
    if latency is None:
        return
    metrics.resilience_event("slo", stats.class_name, value=latency <= slo)


def _replay_exact(
    metrics: ExactFleetMetrics, events: list[dict[str, Any]]
) -> float:
    """The original exact replay, funneled through the sink.

    Queries are discovered from tagged ``run.meta`` events in launch
    order; each one's metrics replay bit-exactly through
    :meth:`RunMetrics.from_trace` on its record slice.
    """
    order: list[str] = []
    issued: dict[str, float] = {}
    class_names: dict[str, str] = {}
    slos: dict[str, float] = {}
    elapsed = 0.0
    for record in events:
        rtype = record["type"]
        qid = record.get("query_id")
        if rtype == RUN_META and qid is not None and qid not in issued:
            order.append(qid)
            issued[qid] = record["t"]
            class_names[qid] = record.get("query_class", record["algorithm"])
            if record.get("slo") is not None:
                slos[qid] = record["slo"]
            if record.get("degraded"):
                metrics.resilience_event("degraded", class_names[qid])
        elif rtype == RUN_END:
            elapsed = max(elapsed, record["t"])
        elif not _replay_coordination(metrics, rtype, record):
            _replay_resilience(metrics, rtype, record)
    for qid in order:
        metrics.query_started(qid, class_names[qid], issued[qid])
        stats = QueryStats.from_metrics(
            qid,
            class_names[qid],
            issued[qid],
            RunMetrics.from_trace(query_records(events, qid)),
        )
        metrics.query_finished(stats)
        note_slo(metrics, stats, slos.get(qid))
    for record in events:
        if record["type"] != LINK_TRANSFER:
            continue
        metrics.link_transfer(
            record["src_host"],
            record["dst_host"],
            record["wire_bytes"],
            record["dur"],
            record.get("query_id"),
        )
    return elapsed


def _replay_streaming(
    metrics: StreamingFleetMetrics, records: Iterable[dict[str, Any]]
) -> tuple[float, int]:
    """Single-pass bounded-memory replay; returns (elapsed, orphans).

    In-flight state is one small record per *open* query, so replaying a
    day-long trace needs memory proportional to concurrency, not length.
    Orphan ``run.end`` events — whose ``run.meta`` lived in a rotated-away
    segment — are skipped and counted.
    """
    inflight: dict[str, tuple[str, str, float, Optional[float]]] = {}
    relocations: dict[str, int] = {}
    aborted: dict[str, int] = {}
    #: Per-open-query planner effort (rounds, candidates, links) folded
    #: into QueryStats at run.end — same totals the live RunMetrics
    #: accumulates through note_plan, read back from planner.search.
    effort: dict[str, list[int]] = {}
    elapsed = 0.0
    orphans = 0
    for record in records:
        rtype = record.get("type")
        if rtype is None or rtype in _FRAME_TYPES:
            continue
        qid = record.get("query_id")
        if rtype == RUN_META:
            if qid is None or qid in inflight:
                continue
            class_name = record.get("query_class", record["algorithm"])
            inflight[qid] = (
                class_name,
                record["algorithm"],
                record["t"],
                record.get("slo"),
            )
            if record.get("degraded"):
                metrics.resilience_event("degraded", class_name)
            metrics.query_started(qid, class_name, record["t"])
        elif rtype == RUN_END:
            elapsed = max(elapsed, record["t"])
            opened = inflight.pop(qid, None) if qid is not None else None
            if opened is None:
                orphans += 1
                continue
            class_name, algorithm, issued_at, slo = opened
            rounds, candidates, links_queried = effort.pop(qid, (0, 0, 0))
            stats = QueryStats(
                query_id=qid,
                class_name=class_name,
                algorithm=algorithm,
                issued_at=issued_at,
                completion_time=record.get("completion_time"),
                images_delivered=record.get("images_delivered", 0),
                truncated=record.get("truncated", False),
                relocations=relocations.pop(qid, 0),
                aborted_relocations=aborted.pop(qid, 0),
                bytes_on_wire=0.0,
                planner_rounds=rounds,
                planner_candidates=candidates,
                planner_links_queried=links_queried,
            )
            metrics.query_finished(stats)
            note_slo(metrics, stats, slo)
        elif rtype == LINK_TRANSFER:
            metrics.link_transfer(
                record["src_host"],
                record["dst_host"],
                record["wire_bytes"],
                record["dur"],
                qid,
            )
        elif rtype == RELOCATION and qid is not None:
            relocations[qid] = relocations.get(qid, 0) + 1
        elif rtype == RELOCATION_ABORT and qid is not None:
            aborted[qid] = aborted.get(qid, 0) + 1
        elif rtype == PLANNER_SEARCH and qid is not None:
            bucket = effort.get(qid)
            if bucket is None:
                bucket = effort[qid] = [0, 0, 0]
            bucket[0] += record.get("rounds", 0)
            bucket[1] += record.get("candidates", 0)
            bucket[2] += record.get("links", 0)
        elif not _replay_coordination(metrics, rtype, record):
            _replay_resilience(metrics, rtype, record)
    return elapsed, orphans


def fleet_from_trace(
    records: Iterable[dict[str, Any]],
    metrics: Optional[MetricsSink] = None,
    *,
    exact_threshold: int = DEFAULT_EXACT_THRESHOLD,
) -> dict[str, Any]:
    """Rebuild the fleet summary from a recorded workload trace.

    Accepts a record list or a lazy record stream (e.g.
    :func:`repro.obs.rotating.read_segments`); header/footer/segment
    frames are ignored.  The sink is chosen exactly as for the live run:
    the trace header's ``scheduled_queries`` meta against
    ``exact_threshold`` (no header or a small fleet means the exact
    path, whose summary is byte-identical to the live schema-1 one for
    complete traces).  Pass ``metrics`` to force a particular sink.
    """
    meta, stream = _peek_header(records)
    if metrics is None:
        scheduled_meta = meta.get("scheduled_queries")
        if (
            scheduled_meta is not None
            and scheduled_meta > exact_threshold
            and meta.get("num_clients") is not None
        ):
            metrics = StreamingFleetMetrics(meta["num_clients"])
        else:
            metrics = ExactFleetMetrics()
    if isinstance(metrics, StreamingFleetMetrics):
        elapsed, _ = _replay_streaming(metrics, stream)
        return metrics.summary(elapsed, scheduled=meta.get("scheduled_queries"))
    events = [r for r in stream if "type" in r]
    elapsed = _replay_exact(metrics, events)
    scheduled = meta.get("scheduled_queries")
    if scheduled is None:
        scheduled = _scheduled_from_events(events)
    return metrics.summary(elapsed, scheduled=scheduled)


def _scheduled_from_events(events: list[dict[str, Any]]) -> Optional[int]:
    """Reconstruct the scheduled-arrival count from a headerless trace.

    Every scheduled arrival leaves at least one tagged footprint: a
    ``run.meta`` (launched), a ``query.shed`` (rejected at admission) or
    a ``query.deadline_abort`` (expired while queued).  Retries share
    their original arrival's base id, so stripping the ``.rN`` suffix
    collapses them.  Without overload protection this equals the
    launched count — the summary's pre-existing default.
    """
    base_ids = {
        record["query_id"].partition(".r")[0]
        for record in events
        if record.get("query_id") is not None
        and record["type"] in (RUN_META, QUERY_SHED, QUERY_DEADLINE_ABORT)
    }
    return len(base_ids) or None
