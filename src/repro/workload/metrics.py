"""Fleet-level metrics for concurrent workloads.

One query's outcome is a plain :class:`~repro.engine.metrics.RunMetrics`;
this module aggregates a fleet of them — plus the shared network's
per-link usage — into a schema-tagged summary dict:

* latency percentiles (p50/p95/p99) over completed queries, where a
  query's latency is its last arrival minus its issue instant;
* Jain's fairness index over per-client mean latencies;
* relocations per query and per-link utilization/contention on the
  shared substrate.

Both the live engine and the :func:`fleet_from_trace` replay feed the
:class:`~repro.workload.sink.MetricsSink` funnel; this module holds the
exact (``workload_schema: 1``) summary construction the sink's exact
path delegates to, plus the shared conventions (latency-block key set,
Jain's index) the streaming schema-2 path reuses.  Small fleets are
byte-identical to the pre-sink summaries; large fleets stream through
:class:`~repro.workload.sink.StreamingFleetMetrics` instead of
materializing per-query rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence, Union

import numpy as np

from repro.engine.metrics import RunMetrics
from repro.workload.sink import (
    DEFAULT_EXACT_THRESHOLD,
    MetricsSink,
    QueryStats,
)
from repro.workload.sink import fleet_from_trace as _sink_fleet_from_trace
from repro.workload.spec import client_of

#: Version tag carried by every exact fleet summary dict.
WORKLOAD_SCHEMA = 1

#: Version tag carried by streaming (sketch-based) fleet summaries.
STREAMING_SCHEMA = 2

#: The latency block's key set — identical in both schemas, and emitted
#: in full (``None``-valued) even for empty fleets.
LATENCY_KEYS = ("count", "mean", "p50", "p95", "p99", "max")


def jain_index(values: Sequence[Optional[float]]) -> float:
    """Jain's fairness index over ``values`` (1.0 = perfectly fair).

    ``None`` entries (clients with no completed queries) are skipped;
    degenerate inputs — empty, all-zero, or non-finite — fall back to
    1.0 rather than dividing by a zero or NaN square sum.
    """
    xs = [float(v) for v in values if v is not None]
    if not xs:
        return 1.0
    square_sum = sum(v * v for v in xs)
    if square_sum == 0.0 or not math.isfinite(square_sum):
        return 1.0
    total = sum(xs)
    return (total * total) / (len(xs) * square_sum)


@dataclass
class LinkUsage:
    """Accumulated wire activity on one canonical host pair."""

    bytes: float = 0.0
    busy_seconds: float = 0.0
    transfers: int = 0
    #: Bytes attributable to each query (untagged traffic is excluded).
    by_query: dict[str, float] = field(default_factory=dict)

    def note(
        self, wire_bytes: float, seconds: float, query_id: Optional[str]
    ) -> None:
        self.bytes += wire_bytes
        self.busy_seconds += seconds
        self.transfers += 1
        if query_id is not None:
            self.by_query[query_id] = self.by_query.get(query_id, 0.0) + wire_bytes


class LinkUsageRecorder:
    """A network observer collecting per-link, per-query usage."""

    def __init__(self) -> None:
        self.links: dict[tuple[str, str], LinkUsage] = {}

    def observe(self, observation) -> None:
        a, b = observation.src_host, observation.dst_host
        key = (a, b) if a < b else (b, a)
        usage = self.links.get(key)
        if usage is None:
            usage = self.links[key] = LinkUsage()
        usage.note(
            observation.wire_bytes,
            observation.finished - observation.started,
            observation.query_id,
        )


@dataclass
class QueryOutcome:
    """One query's contribution to the fleet summary."""

    query_id: str
    class_name: str
    issued_at: float
    metrics: RunMetrics

    @property
    def finished(self) -> bool:
        return not self.metrics.truncated

    @property
    def latency(self) -> Optional[float]:
        if self.metrics.truncated or not self.metrics.arrival_times:
            return None
        return self.metrics.completion_time - self.issued_at

    def stats(self) -> QueryStats:
        """The flat :class:`~repro.workload.sink.QueryStats` view."""
        return QueryStats.from_metrics(
            self.query_id, self.class_name, self.issued_at, self.metrics
        )


def _latency_block(latencies: Sequence[float]) -> dict[str, Any]:
    if not latencies:
        return {key: (0 if key == "count" else None) for key in LATENCY_KEYS}
    arr = np.asarray(latencies, dtype=float)
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
    }


def build_fleet_summary(
    outcomes: Sequence[Union[QueryOutcome, QueryStats]],
    links: dict[tuple[str, str], LinkUsage],
    elapsed: float,
    scheduled: Optional[int] = None,
) -> dict[str, Any]:
    """The exact fleet summary dict (``"workload_schema": 1``).

    ``outcomes`` must be in launch order (:class:`QueryOutcome` entries
    are converted to their :class:`QueryStats` view); ``scheduled`` is
    the number of queries the workload *planned* (closed-loop sessions
    truncated by ``max_sim_time`` may launch fewer).
    """
    stats = [
        o.stats() if isinstance(o, QueryOutcome) else o for o in outcomes
    ]
    latencies = [s.latency for s in stats if s.latency is not None]
    per_client: dict[str, dict[str, Any]] = {}
    for s in stats:
        client = client_of(s.query_id)
        bucket = per_client.setdefault(
            client, {"queries": 0, "completed": 0, "latencies": []}
        )
        bucket["queries"] += 1
        if s.latency is not None:
            bucket["completed"] += 1
            bucket["latencies"].append(s.latency)
    client_means = []
    for client in sorted(per_client):
        bucket = per_client[client]
        values = bucket.pop("latencies")
        bucket["mean_latency"] = (
            float(np.mean(values)) if values else None
        )
        if bucket["mean_latency"] is not None:
            client_means.append(bucket["mean_latency"])

    relocations = sum(s.relocations for s in stats)
    link_block: dict[str, Any] = {}
    for (a, b), usage in sorted(links.items()):
        link_block[f"{a}--{b}"] = {
            "bytes": usage.bytes,
            "busy_seconds": usage.busy_seconds,
            "transfers": usage.transfers,
            "utilization": (usage.busy_seconds / elapsed) if elapsed > 0 else 0.0,
            "queries": {
                qid: usage.by_query[qid] for qid in sorted(usage.by_query)
            },
        }

    return {
        "workload_schema": WORKLOAD_SCHEMA,
        "elapsed": elapsed,
        "scheduled": len(stats) if scheduled is None else scheduled,
        "launched": len(stats),
        "completed": sum(1 for s in stats if s.finished),
        "truncated": sum(1 for s in stats if not s.finished),
        "latency": _latency_block(latencies),
        "fairness_jain": jain_index(client_means),
        "relocations": {
            "total": relocations,
            "per_query_mean": (relocations / len(stats)) if stats else 0.0,
            "aborted": sum(s.aborted_relocations for s in stats),
        },
        "bytes_on_wire": sum(s.bytes_on_wire for s in stats),
        "links": link_block,
        "per_client": per_client,
        "queries": [
            {
                "query_id": s.query_id,
                "class": s.class_name,
                "algorithm": s.algorithm,
                "issued_at": s.issued_at,
                "latency": s.latency,
                "completion_time": s.completion_time,
                "truncated": s.truncated,
                "images_delivered": s.images_delivered,
                "relocations": s.relocations,
                "bytes_on_wire": s.bytes_on_wire,
            }
            for s in stats
        ],
    }


def fleet_from_trace(
    records: Iterable[dict[str, Any]],
    metrics: Optional[MetricsSink] = None,
    *,
    exact_threshold: int = DEFAULT_EXACT_THRESHOLD,
) -> dict[str, Any]:
    """Rebuild the fleet summary from a recorded workload trace.

    Kept here for backwards compatibility; the implementation lives in
    :func:`repro.workload.sink.fleet_from_trace`, which picks the same
    exact/streaming sink the live run would have used.
    """
    return _sink_fleet_from_trace(
        records, metrics, exact_threshold=exact_threshold
    )
