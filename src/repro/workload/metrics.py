"""Fleet-level metrics for concurrent workloads.

One query's outcome is a plain :class:`~repro.engine.metrics.RunMetrics`;
this module aggregates a fleet of them — plus the shared network's
per-link usage — into a schema-tagged summary dict:

* latency percentiles (p50/p95/p99) over completed queries, where a
  query's latency is its last arrival minus its issue instant;
* Jain's fairness index over per-client mean latencies;
* relocations per query and per-link utilization/contention on the
  shared substrate.

:func:`fleet_from_trace` rebuilds the identical summary from a recorded
workload trace alone: per-query metrics replay through
:func:`repro.obs.summary.query_records` +
:meth:`~repro.engine.metrics.RunMetrics.from_trace`, link usage replays
from the tagged ``link.transfer`` spans.  Both paths funnel through
:func:`build_fleet_summary`, so live and replayed summaries are equal
by construction whenever the trace is complete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

import numpy as np

from repro.engine.metrics import RunMetrics
from repro.obs.events import LINK_TRANSFER, RUN_END, RUN_META
from repro.obs.summary import query_records
from repro.workload.spec import client_of

#: Version tag carried by every fleet summary dict.
WORKLOAD_SCHEMA = 1


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index over ``values`` (1.0 = perfectly fair)."""
    xs = [float(v) for v in values]
    if not xs:
        return 1.0
    square_sum = sum(v * v for v in xs)
    if square_sum == 0.0:
        return 1.0
    total = sum(xs)
    return (total * total) / (len(xs) * square_sum)


@dataclass
class LinkUsage:
    """Accumulated wire activity on one canonical host pair."""

    bytes: float = 0.0
    busy_seconds: float = 0.0
    transfers: int = 0
    #: Bytes attributable to each query (untagged traffic is excluded).
    by_query: dict[str, float] = field(default_factory=dict)

    def note(
        self, wire_bytes: float, seconds: float, query_id: Optional[str]
    ) -> None:
        self.bytes += wire_bytes
        self.busy_seconds += seconds
        self.transfers += 1
        if query_id is not None:
            self.by_query[query_id] = self.by_query.get(query_id, 0.0) + wire_bytes


class LinkUsageRecorder:
    """A network observer collecting per-link, per-query usage."""

    def __init__(self) -> None:
        self.links: dict[tuple[str, str], LinkUsage] = {}

    def observe(self, observation) -> None:
        a, b = observation.src_host, observation.dst_host
        key = (a, b) if a < b else (b, a)
        usage = self.links.get(key)
        if usage is None:
            usage = self.links[key] = LinkUsage()
        usage.note(
            observation.wire_bytes,
            observation.finished - observation.started,
            observation.query_id,
        )


@dataclass
class QueryOutcome:
    """One query's contribution to the fleet summary."""

    query_id: str
    class_name: str
    issued_at: float
    metrics: RunMetrics

    @property
    def finished(self) -> bool:
        return not self.metrics.truncated

    @property
    def latency(self) -> Optional[float]:
        if self.metrics.truncated or not self.metrics.arrival_times:
            return None
        return self.metrics.completion_time - self.issued_at


def _latency_block(latencies: Sequence[float]) -> dict[str, Any]:
    if not latencies:
        return {"count": 0, "mean": None, "p50": None, "p95": None,
                "p99": None, "max": None}
    arr = np.asarray(latencies, dtype=float)
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
    }


def build_fleet_summary(
    outcomes: Sequence[QueryOutcome],
    links: dict[tuple[str, str], LinkUsage],
    elapsed: float,
    scheduled: Optional[int] = None,
) -> dict[str, Any]:
    """The fleet summary dict (``"workload_schema": 1``).

    ``outcomes`` must be in launch order; ``scheduled`` is the number of
    queries the workload *planned* (closed-loop sessions truncated by
    ``max_sim_time`` may launch fewer).
    """
    latencies = [o.latency for o in outcomes if o.latency is not None]
    per_client: dict[str, dict[str, Any]] = {}
    for outcome in outcomes:
        client = client_of(outcome.query_id)
        bucket = per_client.setdefault(
            client, {"queries": 0, "completed": 0, "latencies": []}
        )
        bucket["queries"] += 1
        if outcome.latency is not None:
            bucket["completed"] += 1
            bucket["latencies"].append(outcome.latency)
    client_means = []
    for client in sorted(per_client):
        bucket = per_client[client]
        values = bucket.pop("latencies")
        bucket["mean_latency"] = (
            float(np.mean(values)) if values else None
        )
        if bucket["mean_latency"] is not None:
            client_means.append(bucket["mean_latency"])

    relocations = sum(o.metrics.relocations for o in outcomes)
    link_block: dict[str, Any] = {}
    for (a, b), usage in sorted(links.items()):
        link_block[f"{a}--{b}"] = {
            "bytes": usage.bytes,
            "busy_seconds": usage.busy_seconds,
            "transfers": usage.transfers,
            "utilization": (usage.busy_seconds / elapsed) if elapsed > 0 else 0.0,
            "queries": {
                qid: usage.by_query[qid] for qid in sorted(usage.by_query)
            },
        }

    return {
        "workload_schema": WORKLOAD_SCHEMA,
        "elapsed": elapsed,
        "scheduled": len(outcomes) if scheduled is None else scheduled,
        "launched": len(outcomes),
        "completed": sum(1 for o in outcomes if o.finished),
        "truncated": sum(1 for o in outcomes if not o.finished),
        "latency": _latency_block(latencies),
        "fairness_jain": jain_index(client_means),
        "relocations": {
            "total": relocations,
            "per_query_mean": (relocations / len(outcomes)) if outcomes else 0.0,
            "aborted": sum(o.metrics.aborted_relocations for o in outcomes),
        },
        "bytes_on_wire": sum(o.metrics.bytes_on_wire for o in outcomes),
        "links": link_block,
        "per_client": per_client,
        "queries": [
            {
                "query_id": o.query_id,
                "class": o.class_name,
                "algorithm": o.metrics.algorithm,
                "issued_at": o.issued_at,
                "latency": o.latency,
                "completion_time": (
                    o.metrics.completion_time if o.metrics.arrival_times else None
                ),
                "truncated": o.metrics.truncated,
                "images_delivered": len(o.metrics.arrival_times),
                "relocations": o.metrics.relocations,
                "bytes_on_wire": o.metrics.bytes_on_wire,
            }
            for o in outcomes
        ],
    }


def fleet_from_trace(records: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Rebuild the fleet summary from a recorded workload trace.

    Accepts the full JSONL record list (header/footer frames ignored).
    Queries are discovered from their tagged ``run.meta`` events, in
    launch order; per-query metrics replay bit-exactly through
    :meth:`RunMetrics.from_trace` on the query's record slice.
    """
    events = [r for r in records if "type" in r]
    order: list[str] = []
    issued: dict[str, float] = {}
    class_names: dict[str, str] = {}
    elapsed = 0.0
    for record in events:
        qid = record.get("query_id")
        if record["type"] == RUN_META and qid is not None and qid not in issued:
            order.append(qid)
            issued[qid] = record["t"]
            class_names[qid] = record.get("query_class", record["algorithm"])
        elif record["type"] == RUN_END:
            elapsed = max(elapsed, record["t"])

    outcomes = [
        QueryOutcome(
            query_id=qid,
            class_name=class_names[qid],
            issued_at=issued[qid],
            metrics=RunMetrics.from_trace(query_records(events, qid)),
        )
        for qid in order
    ]

    links: dict[tuple[str, str], LinkUsage] = {}
    for record in events:
        if record["type"] != LINK_TRANSFER:
            continue
        a, b = record["src_host"], record["dst_host"]
        key = (a, b) if a < b else (b, a)
        usage = links.get(key)
        if usage is None:
            usage = links[key] = LinkUsage()
        usage.note(record["wire_bytes"], record["dur"], record.get("query_id"))

    return build_fleet_summary(outcomes, links, elapsed)
