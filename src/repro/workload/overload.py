"""Fleet-level overload protection: admission, deadlines, breakers.

The workload engine admits every scheduled query unconditionally by
default.  An :class:`OverloadPolicy` on the spec turns on a
deterministic protection pipeline, applied in arrival order:

1. **Admission** — at most ``max_concurrent`` queries run at once.
   Arrivals beyond that either join a bounded FIFO queue
   (``max_queue_depth``) or are *shed*: rejected outright, with the
   shed-vs-queue choice optionally randomized by a seeded per-slot coin
   (``shed_probability``).  Every decision happens at arrival time and
   derives from the workload seed, so runs replay bit-exactly.
2. **Deadlines** — a :class:`~repro.workload.spec.QueryClass` with a
   ``deadline`` aborts queries that exceed it (measured from arrival,
   queueing included) through the cooperative cancellation path:
   the client stops demanding, the demand-driven pipeline drains, and
   the query finalizes truncated.  Queries that expire while still
   queued are aborted without ever launching.
3. **Retry budgets** — each client may resubmit deadline-aborted
   queries up to ``retry_budget`` times (cumulative per client), after
   ``retry_backoff`` seconds; exhaustion is recorded, not retried.
4. **Circuit breakers** — a per-host failure counter increments when a
   deadline abort involves a host that is down (per the fault
   injector); at ``breaker_threshold`` the breaker opens for
   ``breaker_cooldown`` seconds and new queries touching that host are
   planned with ``degraded_algorithm`` (the planner fallback order's
   terminal state) instead of retrying into a dead host.

Every transition emits an obs event (``query.shed``, ``query.queued``,
``query.deadline_abort``, ``query.retry``, ``retry.budget_exhausted``,
``breaker.open``/``breaker.close``) and feeds the
:class:`ResilienceCounters` carried by both
:class:`~repro.workload.sink.MetricsSink` implementations, so live
runs, trace replays and sharded merges reconcile exactly.

With no policy and no class deadlines the engine never constructs an
:class:`OverloadController`: the default path is bit-identical to the
pre-overload engine (pinned by ``tests/workload/
test_defaults_equivalence.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional

import numpy as np

from repro.engine.config import Algorithm
from repro.obs.events import (
    BREAKER_CLOSE,
    BREAKER_OPEN,
    QUERY_DEADLINE_ABORT,
    QUERY_QUEUED,
    QUERY_RETRY,
    QUERY_SHED,
    RETRY_BUDGET_EXHAUSTED,
)
from repro.obs.tracer import ScopedTracer

#: Salt of the per-slot shed-coin streams (seed, salt, client, ordinal,
#: attempt) — disjoint from every other seeded stream in the workload.
_SHED_SALT = 7919


@dataclass(frozen=True)
class OverloadPolicy:
    """Admission, retry and breaker limits for one workload.

    The default instance is *null*: it configures nothing and the
    engine treats it exactly like ``overload=None``.
    """

    #: Queries running at once; ``None`` admits everything.
    max_concurrent: Optional[int] = None
    #: Arrivals waiting for a slot; 0 sheds everything over the limit.
    max_queue_depth: int = 0
    #: Probability that a saturated arrival is shed instead of queued
    #: (seeded per (client, ordinal, attempt) slot; 0 queues whenever
    #: there is room).
    shed_probability: float = 0.0
    #: Deadline-aborted resubmissions allowed per client (cumulative).
    retry_budget: int = 0
    #: Seconds between a deadline abort and its resubmission.
    retry_backoff: float = 30.0
    #: Consecutive down-host failures that trip a host's breaker;
    #: ``None`` disables breakers.
    breaker_threshold: Optional[int] = None
    #: Seconds an open breaker stays open before closing again.
    breaker_cooldown: float = 600.0
    #: Plan used for queries touching a broken host (the planner
    #: fallback order's terminal state).
    degraded_algorithm: Algorithm = Algorithm.DOWNLOAD_ALL

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "degraded_algorithm", Algorithm(self.degraded_algorithm)
        )
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {self.max_concurrent!r}"
            )
        if self.max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be >= 0, got {self.max_queue_depth!r}"
            )
        if not 0.0 <= self.shed_probability <= 1.0:
            raise ValueError(
                f"shed_probability must be in [0, 1], "
                f"got {self.shed_probability!r}"
            )
        if self.retry_budget < 0:
            raise ValueError(
                f"retry_budget must be >= 0, got {self.retry_budget!r}"
            )
        if self.retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {self.retry_backoff!r}"
            )
        if self.breaker_threshold is not None and self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, "
                f"got {self.breaker_threshold!r}"
            )
        if self.breaker_cooldown <= 0:
            raise ValueError(
                f"breaker_cooldown must be positive, "
                f"got {self.breaker_cooldown!r}"
            )

    def is_null(self) -> bool:
        """True if the policy limits nothing (engine skips the
        controller unless a class carries a deadline)."""
        return (
            self.max_concurrent is None
            and self.retry_budget == 0
            and self.breaker_threshold is None
        )


class _PerClass:
    """Per-query-class resilience tallies."""

    __slots__ = ("shed", "deadline_aborts", "degraded", "slo_hits", "slo_total")

    def __init__(self) -> None:
        self.shed = 0
        self.deadline_aborts = 0
        self.degraded = 0
        self.slo_hits = 0
        self.slo_total = 0

    def merge(self, other: "_PerClass") -> None:
        self.shed += other.shed
        self.deadline_aborts += other.deadline_aborts
        self.degraded += other.degraded
        self.slo_hits += other.slo_hits
        self.slo_total += other.slo_total


class ResilienceCounters:
    """Overload-protection tallies carried by every metrics sink.

    All state is integers (plain adds), a max (``queue_peak``) and a
    per-host int map — every merge is commutative and associative, so
    sharded sinks fold order-invariantly.  ``engaged`` stays false
    until any counter moves; a dormant instance adds nothing to the
    summary dict, which is what keeps defaults-off summaries
    bit-identical to pre-overload ones.
    """

    __slots__ = (
        "shed",
        "queued",
        "queue_peak",
        "deadline_aborts",
        "retries",
        "retry_budget_exhausted",
        "breaker_opens",
        "breaker_closes",
        "breaker_hosts",
        "degraded",
        "per_class",
    )

    def __init__(self) -> None:
        self.shed = 0
        self.queued = 0
        self.queue_peak = 0
        self.deadline_aborts = 0
        self.retries = 0
        self.retry_budget_exhausted = 0
        self.breaker_opens = 0
        self.breaker_closes = 0
        self.breaker_hosts: dict[str, int] = {}
        self.degraded = 0
        self.per_class: dict[str, _PerClass] = {}

    @property
    def engaged(self) -> bool:
        return bool(
            self.shed
            or self.queued
            or self.deadline_aborts
            or self.retries
            or self.retry_budget_exhausted
            or self.breaker_opens
            or self.degraded
            or self.per_class
        )

    def _class(self, name: Optional[str]) -> _PerClass:
        stats = self.per_class.get(name or "")
        if stats is None:
            stats = self.per_class[name or ""] = _PerClass()
        return stats

    def note(
        self,
        kind: str,
        class_name: Optional[str] = None,
        host: Optional[str] = None,
        value: Any = None,
    ) -> None:
        """Record one resilience transition (live engine or replay)."""
        if kind == "shed":
            self.shed += 1
            self._class(class_name).shed += 1
        elif kind == "queued":
            self.queued += 1
            if value is not None:
                self.queue_peak = max(self.queue_peak, int(value))
        elif kind == "deadline_abort":
            self.deadline_aborts += 1
            self._class(class_name).deadline_aborts += 1
        elif kind == "retry":
            self.retries += 1
        elif kind == "retry_budget_exhausted":
            self.retry_budget_exhausted += 1
        elif kind == "breaker_open":
            self.breaker_opens += 1
            if host is not None:
                self.breaker_hosts[host] = self.breaker_hosts.get(host, 0) + 1
        elif kind == "breaker_close":
            self.breaker_closes += 1
        elif kind == "degraded":
            self.degraded += 1
            self._class(class_name).degraded += 1
        elif kind == "slo":
            stats = self._class(class_name)
            stats.slo_total += 1
            if value:
                stats.slo_hits += 1
        else:
            raise ValueError(f"unknown resilience event kind {kind!r}")

    def merge(self, other: "ResilienceCounters") -> None:
        self.shed += other.shed
        self.queued += other.queued
        self.queue_peak = max(self.queue_peak, other.queue_peak)
        self.deadline_aborts += other.deadline_aborts
        self.retries += other.retries
        self.retry_budget_exhausted += other.retry_budget_exhausted
        self.breaker_opens += other.breaker_opens
        self.breaker_closes += other.breaker_closes
        for host, opens in other.breaker_hosts.items():
            self.breaker_hosts[host] = self.breaker_hosts.get(host, 0) + opens
        self.degraded += other.degraded
        for name, stats in other.per_class.items():
            mine = self.per_class.get(name)
            if mine is None:
                self.per_class[name] = stats
            else:
                mine.merge(stats)

    def block(
        self, launched: int, completed: int, elapsed: float
    ) -> dict[str, Any]:
        """The summary dict's ``"resilience"`` block.

        Rates derive only from merged integer counters (plus the
        caller's launched/completed/elapsed), so any shard order — and
        the trace replay — produces the identical block.
        """
        offered = self.shed + launched
        return {
            "shed": self.shed,
            "shed_rate": (self.shed / offered) if offered else 0.0,
            "queued": self.queued,
            "queue_peak": self.queue_peak,
            "deadline_aborts": self.deadline_aborts,
            "deadline_miss_rate": (
                (self.deadline_aborts / offered) if offered else 0.0
            ),
            "retries": self.retries,
            "retry_budget_exhausted": self.retry_budget_exhausted,
            "breaker": {
                "opens": self.breaker_opens,
                "closes": self.breaker_closes,
                "hosts": {
                    host: self.breaker_hosts[host]
                    for host in sorted(self.breaker_hosts)
                },
            },
            "degraded": self.degraded,
            "goodput": (completed / elapsed) if elapsed > 0 else 0.0,
            "per_class": {
                name: {
                    "shed": stats.shed,
                    "deadline_aborts": stats.deadline_aborts,
                    "degraded": stats.degraded,
                    "slo_eligible": stats.slo_total,
                    "slo_attainment": (
                        (stats.slo_hits / stats.slo_total)
                        if stats.slo_total
                        else None
                    ),
                }
                for name in sorted(self.per_class)
                for stats in (self.per_class[name],)
            },
        }


class _Breaker:
    __slots__ = ("failures", "opened_at")

    def __init__(self) -> None:
        self.failures = 0
        self.opened_at: Optional[float] = None


@dataclass
class Submission:
    """One schedule slot's journey through the admission controller.

    ``completion`` fires when the *slot* resolves — completed, shed, or
    aborted with no retry budget left.  Retries share the original
    submission's completion event, so closed-loop sessions block until
    the slot's final attempt settles.
    """

    scheduled: Any  # ScheduledQuery (duck-typed; engine owns the class)
    arrival_at: float
    attempt: int
    completion: Any  # sim Event
    client_index: int = field(init=False)

    def __post_init__(self) -> None:
        self.client_index = self.scheduled.client_index


class OverloadController:
    """Arrival-time admission, deadline watchdogs, retries, breakers.

    Constructed by the engine only when the spec engages protection (a
    non-null policy or a class deadline); owns no processes — every
    decision runs inside :meth:`~repro.sim.core.Environment.
    schedule_callback` one-shots or the engine's done callbacks, so the
    calendar stays exactly as deterministic as the unprotected engine's.
    """

    def __init__(
        self,
        env,
        policy: OverloadPolicy,
        seed: int,
        tracer,
        sink,
        launch: Callable[[Any], Any],
        slot_resolved: Callable[[], None],
    ) -> None:
        self.env = env
        self.policy = policy
        self.seed = seed
        self.tracer = tracer
        self.sink = sink
        self._launch = launch
        self._slot_resolved = slot_resolved
        #: Set by the engine once the fault injector (if any) exists.
        self.injector = None
        self.active = 0
        self.queue: deque[Submission] = deque()
        self._retry_left: dict[int, int] = {}
        self._breakers: dict[str, _Breaker] = {}
        #: query_id -> submission, for launched (in-flight) attempts.
        self._inflight: dict[str, Submission] = {}

    # -- event plumbing -------------------------------------------------
    def _emit(
        self, event_type: str, query_id: Optional[str], **fields: Any
    ) -> None:
        if not self.tracer.enabled:
            return
        if query_id is None:
            # Breaker transitions are fleet-level machinery, untagged
            # like fault-plan timeline boundaries.
            self.tracer.emit(event_type, self.env.now, **fields)
        else:
            scoped = ScopedTracer(self.tracer, query_id=query_id)
            scoped.emit(event_type, self.env.now, **fields)

    # -- submission -----------------------------------------------------
    def submit(self, scheduled) -> Submission:
        """Route one schedule slot: admit, queue or shed (arrival time)."""
        sub = Submission(
            scheduled=scheduled,
            arrival_at=self.env.now,
            attempt=0,
            completion=self.env.event(),
        )
        self._dispatch(sub)
        return sub

    def _dispatch(self, sub: Submission) -> None:
        self._sweep_breakers()
        policy = self.policy
        if policy.max_concurrent is None or (
            self.active < policy.max_concurrent and not self.queue
        ):
            self._admit(sub)
        elif len(self.queue) >= policy.max_queue_depth or self._shed_coin(sub):
            self._shed(sub)
        else:
            self.queue.append(sub)
            depth = len(self.queue)
            self._emit(
                QUERY_QUEUED,
                sub.scheduled.query_id,
                query_class=sub.scheduled.qclass.name,
                depth=depth,
            )
            self.sink.resilience_event(
                "queued", sub.scheduled.qclass.name, value=depth
            )

    def _shed_coin(self, sub: Submission) -> bool:
        p = self.policy.shed_probability
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        rng = np.random.default_rng(
            (
                self.seed,
                _SHED_SALT,
                sub.client_index,
                sub.scheduled.ordinal,
                sub.attempt,
            )
        )
        return bool(rng.random() < p)

    def _shed(self, sub: Submission) -> None:
        scheduled = sub.scheduled
        self._emit(
            QUERY_SHED,
            scheduled.query_id,
            query_class=scheduled.qclass.name,
            attempt=sub.attempt,
        )
        self.sink.resilience_event("shed", scheduled.qclass.name)
        self._resolve(sub)

    def _admit(self, sub: Submission) -> None:
        self.active += 1
        scheduled = sub.scheduled
        open_hosts = self._open_hosts()
        if (
            open_hosts
            and scheduled.spec.algorithm is not self.policy.degraded_algorithm
            and open_hosts.intersection(scheduled.spec.server_hosts)
        ):
            scheduled = replace(
                scheduled,
                spec=replace(
                    scheduled.spec, algorithm=self.policy.degraded_algorithm
                ),
                degraded=True,
            )
            sub.scheduled = scheduled
        plan = self._launch(scheduled)
        self._inflight[plan.query_id] = sub
        deadline = scheduled.qclass.deadline
        if deadline is not None:
            remaining = max(sub.arrival_at + deadline - self.env.now, 0.0)
            self.env.schedule_callback(
                remaining, lambda: self._deadline_fire(plan, sub)
            )

    # -- deadlines ------------------------------------------------------
    def _deadline_fire(self, plan, sub: Submission) -> None:
        runtime = plan.runtime
        if runtime is None or runtime.done.triggered:
            return  # finished (or already finalized) in time
        plan.deadline_aborted = True
        runtime.cancel()
        scheduled = sub.scheduled
        self._emit(
            QUERY_DEADLINE_ABORT,
            plan.query_id,
            query_class=scheduled.qclass.name,
            deadline=scheduled.qclass.deadline,
            waited=self.env.now - sub.arrival_at,
            launched=True,
        )
        self.sink.resilience_event("deadline_abort", scheduled.qclass.name)
        self._note_failure(scheduled.spec.server_hosts)
        # Settling `done` flows through the engine's completion callback:
        # the streaming path finalizes (truncated), then query_finished
        # runs the retry/resolve/drain step.
        runtime.done.succeed(self.env.now)

    def _expire_queued(self, sub: Submission) -> None:
        """A query aged out of the admission queue without launching."""
        scheduled = sub.scheduled
        self._emit(
            QUERY_DEADLINE_ABORT,
            scheduled.query_id,
            query_class=scheduled.qclass.name,
            deadline=scheduled.qclass.deadline,
            waited=self.env.now - sub.arrival_at,
            launched=False,
        )
        self.sink.resilience_event("deadline_abort", scheduled.qclass.name)
        self._after_failure(sub)

    # -- completion -----------------------------------------------------
    def query_finished(self, plan) -> None:
        """Engine callback: a launched query's ``done`` event settled."""
        sub = self._inflight.pop(plan.query_id)
        self.active -= 1
        if plan.deadline_aborted:
            self._after_failure(sub)
        else:
            self._note_success(sub.scheduled.spec.server_hosts)
            self._resolve(sub)
        self._drain()

    def _after_failure(self, sub: Submission) -> None:
        policy = self.policy
        scheduled = sub.scheduled
        if policy.retry_budget > 0:
            left = self._retry_left.get(sub.client_index, policy.retry_budget)
            if left > 0:
                self._retry_left[sub.client_index] = left - 1
                self._schedule_retry(sub)
                return
            self._emit(
                RETRY_BUDGET_EXHAUSTED,
                scheduled.query_id,
                query_class=scheduled.qclass.name,
                client=sub.client_index,
            )
            self.sink.resilience_event(
                "retry_budget_exhausted", scheduled.qclass.name
            )
        self._resolve(sub)

    def _schedule_retry(self, sub: Submission) -> None:
        scheduled = sub.scheduled
        attempt = sub.attempt + 1
        base = scheduled.query_id.split(".r", 1)[0]
        retry_qid = f"{base}.r{attempt}"
        wait = self.policy.retry_backoff
        self._emit(
            QUERY_RETRY,
            retry_qid,
            query_class=scheduled.qclass.name,
            attempt=attempt,
            wait=wait,
        )
        self.sink.resilience_event("retry", scheduled.qclass.name)
        # A degraded first attempt does not pin the retry: the breaker
        # state at resubmission time decides again.
        retry_scheduled = replace(
            scheduled, query_id=retry_qid, attempt=attempt, degraded=False
        )

        def _resubmit() -> None:
            retry_sub = Submission(
                scheduled=retry_scheduled,
                arrival_at=self.env.now,
                attempt=attempt,
                completion=sub.completion,
            )
            self._dispatch(retry_sub)

        self.env.schedule_callback(wait, _resubmit)

    def _resolve(self, sub: Submission) -> None:
        if not sub.completion.triggered:
            sub.completion.succeed(self.env.now)
        self._slot_resolved()

    def _drain(self) -> None:
        policy = self.policy
        while self.queue and (
            policy.max_concurrent is None
            or self.active < policy.max_concurrent
        ):
            sub = self.queue.popleft()
            deadline = sub.scheduled.qclass.deadline
            if (
                deadline is not None
                and self.env.now - sub.arrival_at >= deadline
            ):
                self._expire_queued(sub)
                continue
            self._admit(sub)

    # -- breakers -------------------------------------------------------
    def _open_hosts(self) -> set[str]:
        return {
            host
            for host, breaker in self._breakers.items()
            if breaker.opened_at is not None
        }

    def _sweep_breakers(self) -> None:
        cooldown = self.policy.breaker_cooldown
        now = self.env.now
        for host in sorted(self._breakers):
            breaker = self._breakers[host]
            if (
                breaker.opened_at is not None
                and now >= breaker.opened_at + cooldown
            ):
                open_seconds = now - breaker.opened_at
                breaker.opened_at = None
                breaker.failures = 0
                self._emit(
                    BREAKER_CLOSE, None, host=host,
                    open_seconds=open_seconds,
                )
                self.sink.resilience_event("breaker_close", host=host)

    def _note_failure(self, hosts) -> None:
        threshold = self.policy.breaker_threshold
        if threshold is None:
            return
        injector = self.injector
        if injector is None:
            return
        now = self.env.now
        for host in hosts:
            if not injector.host_down(host, now):
                continue
            breaker = self._breakers.setdefault(host, _Breaker())
            if breaker.opened_at is not None:
                continue
            breaker.failures += 1
            if breaker.failures >= threshold:
                breaker.opened_at = now
                self._emit(
                    BREAKER_OPEN, None, host=host,
                    failures=breaker.failures,
                )
                self.sink.resilience_event("breaker_open", host=host)

    def _note_success(self, hosts) -> None:
        if self.policy.breaker_threshold is None or not self._breakers:
            return
        for host in hosts:
            breaker = self._breakers.get(host)
            if breaker is not None and breaker.opened_at is None:
                breaker.failures = 0
