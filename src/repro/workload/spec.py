"""Workload specifications: which queries run, for whom, and when.

A :class:`WorkloadSpec` describes a *fleet* of combination queries over
one shared wide-area network: a client population, each client's query
mix (weighted :class:`QueryClass` entries — possibly different placement
algorithms, tree sizes, or spec overrides per class), and an arrival
discipline (:mod:`repro.workload.arrivals`).  Everything derives from
the workload ``seed``, so a spec is a complete, reproducible experiment.

The per-query :class:`~repro.engine.config.SimulationSpec` built by
:meth:`WorkloadSpec.query_spec` reuses the single-query machinery
unchanged; :meth:`WorkloadSpec.from_simulation_spec` wraps an existing
spec as a one-client, one-query workload whose execution is
bit-identical to :func:`repro.engine.simulation.run_simulation` (pinned
by the identity test).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields, replace
from typing import Any, Mapping, Optional, Union

import numpy as np

from repro.engine.config import Algorithm, SimulationSpec
from repro.experiments.config import ExperimentConfig, make_configuration
from repro.faults.plan import FaultPlan
from repro.fleet import FleetPolicy
from repro.monitor.system import MonitoringConfig
from repro.traces.study import TraceLibrary
from repro.traces.trace import BandwidthTrace
from repro.workload.arrivals import Arrivals, ClosedLoop
from repro.workload.overload import OverloadPolicy

#: SimulationSpec fields that are structural (handled explicitly when a
#: query spec is assembled) rather than free per-class overrides.
_STRUCTURAL_FIELDS = frozenset(
    {
        "algorithm",
        "tree_shape",
        "num_servers",
        "link_traces",
        "server_hosts",
        "client_host",
        "images_per_server",
        "faults",
    }
)


def query_id_for(client_index: int, ordinal: int) -> str:
    """The canonical query id: ``"c{client}:{ordinal}"``."""
    return f"c{client_index}:{ordinal}"


def client_of(query_id: str) -> str:
    """The client name (``"c{index}"``) encoded in a query id."""
    return query_id.split(":", 1)[0]


@dataclass(frozen=True)
class QueryClass:
    """One kind of query in the mix.

    ``overrides`` are extra :class:`SimulationSpec` fields applied to
    every query of this class (a mapping is accepted and normalized to a
    sorted tuple so the class stays hashable and picklable).
    """

    name: str
    algorithm: Algorithm
    #: Relative probability of a client's query being of this class.
    weight: float = 1.0
    #: Servers this class's tree combines; ``None`` uses the workload's
    #: full pool, a smaller count draws a per-query subset of it.
    num_servers: Optional[int] = None
    #: ``None`` inherits the workload's ``images_per_server``.
    images_per_server: Optional[int] = None
    #: Abort queries of this class that run longer than this many
    #: seconds from arrival (queueing included); ``None`` never aborts.
    #: Engages the overload controller (see
    #: :mod:`repro.workload.overload`).
    deadline: Optional[float] = None
    #: Latency SLO target in seconds: completed queries at or under it
    #: count toward the class's ``slo_attainment`` in the summary's
    #: resilience block.  Pure accounting — never changes execution.
    slo_target: Optional[float] = None
    overrides: Any = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "algorithm", Algorithm(self.algorithm))
        if isinstance(self.overrides, Mapping):
            object.__setattr__(
                self, "overrides", tuple(sorted(self.overrides.items()))
            )
        else:
            object.__setattr__(self, "overrides", tuple(self.overrides))
        if not self.weight > 0:
            raise ValueError(f"class weight must be positive, got {self.weight!r}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline!r}")
        if self.slo_target is not None and self.slo_target <= 0:
            raise ValueError(
                f"slo_target must be positive, got {self.slo_target!r}"
            )
        bad = {k for k, _ in self.overrides} & _STRUCTURAL_FIELDS
        if bad:
            raise ValueError(
                f"structural fields {sorted(bad)} cannot be class overrides"
            )


@dataclass(frozen=True)
class WorkloadSpec:
    """A concurrent multi-query workload over one shared network."""

    #: The query mix; a single entry means every query is of that class.
    classes: tuple[QueryClass, ...]
    num_clients: int = 1
    queries_per_client: int = 1
    arrivals: Arrivals = field(default_factory=ClosedLoop)
    #: Master seed for arrivals, mix draws and per-query seeds.
    seed: int = 0

    # ---- shared substrate (network, hosts, monitoring) ----------------
    num_servers: int = 8
    tree_shape: str = "binary"
    images_per_server: int = 180
    #: Network configuration draw, exactly as in the experiments module:
    #: configuration ``config_index`` of the study seeded by
    #: ``network_seed`` (ignored when ``link_traces`` is given).
    network_seed: int = 1998
    config_index: int = 0
    study_seed: int = 1998
    library: Optional[TraceLibrary] = None
    #: Explicit traces per canonical host pair; bypasses the study draw.
    link_traces: Optional[Mapping[tuple[str, str], BandwidthTrace]] = None
    #: Explicit server-host names (requires ``link_traces``); ``None``
    #: uses the conventional ``h0..h{num_servers-1}``.
    server_hosts_override: Optional[tuple[str, ...]] = None
    client_host: str = "client"
    fault_plan: Optional[FaultPlan] = None
    #: Admission/retry/breaker limits (:class:`~repro.workload.
    #: overload.OverloadPolicy`); ``None`` (or a null policy with no
    #: class deadlines) admits everything and is bit-identical to the
    #: pre-overload engine.
    overload: Optional["OverloadPolicy"] = None
    #: Fleet-aware joint planning (:class:`~repro.fleet.FleetPolicy`);
    #: ``None`` keeps every query planning blindly against raw monitor
    #: estimates, bit-identical to the pre-fleet engine.
    fleet: Optional[FleetPolicy] = None
    monitoring: MonitoringConfig = field(default_factory=MonitoringConfig)
    startup_cost: float = 0.050
    nic_capacity: int = 1
    disk_rate: float = 3 * 1024 * 1024
    seed_initial_snapshot: bool = True
    max_sim_time: float = 10 * 86400.0
    #: Kernel fast path for fault-free transfers (see
    #: :attr:`repro.engine.config.SimulationSpec.fluid_fast_path`).
    fluid_fast_path: bool = True
    #: Planner grid-search engine for every query (see
    #: :attr:`repro.engine.config.SimulationSpec.planner_engine`); a
    #: class override wins per class.
    planner_engine: str = "vectorized"
    #: Restrict the schedule to these client indices (one shard of the
    #: full ``num_clients`` population).  Seeds, query ids and arrival
    #: streams stay those of the full run; ``None`` schedules everyone.
    client_subset: Optional[tuple[int, ...]] = None
    #: ``None`` picks exact metrics for small fleets and streaming
    #: sketches above ``exact_metrics_threshold``; ``"exact"`` or
    #: ``"streaming"`` forces one path.
    metrics_mode: Optional[str] = None
    #: Largest scheduled-query count still summarized exactly
    #: (``workload_schema: 1``) when ``metrics_mode`` is ``None``.
    exact_metrics_threshold: int = 1000
    #: Relative error bound of the streaming quantile sketches.
    metrics_relative_error: float = 0.01

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("a workload needs at least one query class")
        object.__setattr__(self, "classes", tuple(self.classes))
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate query class names in {names!r}")
        if self.num_clients < 0:
            raise ValueError("num_clients must be non-negative")
        if self.queries_per_client < 1:
            raise ValueError("queries_per_client must be >= 1")
        if self.num_servers < 2:
            raise ValueError("need >= 2 servers")
        for qclass in self.classes:
            if qclass.num_servers is not None and not (
                2 <= qclass.num_servers <= self.num_servers
            ):
                raise ValueError(
                    f"class {qclass.name!r} wants {qclass.num_servers} servers; "
                    f"the workload pool has {self.num_servers}"
                )
        if self.server_hosts_override is not None and self.link_traces is None:
            raise ValueError("server_hosts_override requires explicit link_traces")
        if self.client_subset is not None:
            subset = tuple(sorted({int(i) for i in self.client_subset}))
            for index in subset:
                if not (0 <= index < self.num_clients):
                    raise ValueError(
                        f"client_subset index {index} outside the "
                        f"0..{self.num_clients - 1} population"
                    )
            object.__setattr__(self, "client_subset", subset)
        if self.metrics_mode not in (None, "exact", "streaming"):
            raise ValueError(
                f"metrics_mode must be None, 'exact' or 'streaming', "
                f"got {self.metrics_mode!r}"
            )
        if self.exact_metrics_threshold < 0:
            raise ValueError("exact_metrics_threshold must be >= 0")
        if not (0.0 < self.metrics_relative_error < 1.0):
            raise ValueError("metrics_relative_error must be in (0, 1)")
        if self.fleet is not None and not isinstance(self.fleet, FleetPolicy):
            raise ValueError(
                f"fleet must be a FleetPolicy or None, got {self.fleet!r}"
            )

    # ---- derived ------------------------------------------------------
    @property
    def server_hosts(self) -> tuple[str, ...]:
        if self.server_hosts_override is not None:
            return self.server_hosts_override
        return tuple(f"h{i}" for i in range(self.num_servers))

    @property
    def all_hosts(self) -> tuple[str, ...]:
        return (*self.server_hosts, self.client_host)

    @property
    def client_indices(self) -> tuple[int, ...]:
        """The client indices this spec actually schedules."""
        if self.client_subset is not None:
            return self.client_subset
        return tuple(range(self.num_clients))

    @property
    def total_queries(self) -> int:
        return len(self.client_indices) * self.queries_per_client

    @property
    def overload_engaged(self) -> bool:
        """True when the engine must route arrivals through the
        :class:`~repro.workload.overload.OverloadController` (a non-null
        policy, or any class with a deadline)."""
        if self.overload is not None and not self.overload.is_null():
            return True
        return any(qclass.deadline is not None for qclass in self.classes)

    @property
    def overload_policy(self) -> OverloadPolicy:
        """The effective policy (a null one when nothing is set)."""
        return self.overload if self.overload is not None else OverloadPolicy()

    @property
    def fleet_engaged(self) -> bool:
        """True when the engine must route planning through a
        :class:`~repro.fleet.FleetCoordinator`."""
        return self.fleet is not None

    def build_metrics(self):
        """The :class:`~repro.workload.sink.MetricsSink` for this fleet.

        Chosen by ``metrics_mode`` / ``exact_metrics_threshold``; sinks
        of shards built from the same spec are mutually mergeable.
        """
        # Imported lazily: repro.workload.sink imports this module.
        from repro.workload.sink import fleet_metrics_for

        return fleet_metrics_for(
            scheduled=self.total_queries,
            num_clients=self.num_clients,
            mode=self.metrics_mode,
            exact_threshold=self.exact_metrics_threshold,
            relative_error=self.metrics_relative_error,
        )

    def resolve_links(self) -> Mapping[tuple[str, str], BandwidthTrace]:
        """The shared network's trace per canonical host pair."""
        if self.link_traces is not None:
            return self.link_traces
        cfg = ExperimentConfig(
            num_servers=self.num_servers,
            seed=self.network_seed,
            study_seed=self.study_seed,
            library=self.library,
        )
        return make_configuration(cfg, self.config_index)

    # ---- the schedule -------------------------------------------------
    def class_for(self, client_index: int, ordinal: int) -> QueryClass:
        """The query class drawn for one (client, ordinal) slot.

        With a single class no randomness is consumed; otherwise each
        client draws its sequence from its own ``(seed, client)`` stream,
        weighted by class weights.
        """
        if len(self.classes) == 1:
            return self.classes[0]
        rng = np.random.default_rng((self.seed, 6211, client_index))
        weights = np.array([c.weight for c in self.classes], dtype=float)
        weights /= weights.sum()
        picks = rng.choice(len(self.classes), size=ordinal + 1, p=weights)
        return self.classes[int(picks[-1])]

    def mix_for(self, client_index: int) -> list[QueryClass]:
        """All ``queries_per_client`` class draws for one client."""
        if len(self.classes) == 1:
            return [self.classes[0]] * self.queries_per_client
        rng = np.random.default_rng((self.seed, 6211, client_index))
        weights = np.array([c.weight for c in self.classes], dtype=float)
        weights /= weights.sum()
        picks = rng.choice(
            len(self.classes), size=self.queries_per_client, p=weights
        )
        return [self.classes[int(i)] for i in picks]

    def query_servers(
        self, qclass: QueryClass, client_index: int, ordinal: int
    ) -> tuple[str, ...]:
        """The server hosts one query's tree combines."""
        pool = self.server_hosts
        count = qclass.num_servers or self.num_servers
        if count == len(pool):
            return pool
        rng = np.random.default_rng((self.seed, 5077, client_index, ordinal))
        picks = rng.choice(len(pool), size=count, replace=False)
        return tuple(pool[i] for i in sorted(picks))

    def query_spec(
        self, qclass: QueryClass, client_index: int, ordinal: int
    ) -> SimulationSpec:
        """The full single-query spec for one (client, ordinal) slot.

        Per-query seeds derive from the workload seed and the slot, so
        two queries of the same class still draw distinct workloads;
        class ``overrides`` (e.g. a pinned ``workload_seed``) win.
        """
        base_seed = self.seed + 101 * client_index + ordinal
        kwargs: dict[str, Any] = dict(
            algorithm=qclass.algorithm,
            tree_shape=self.tree_shape,
            num_servers=qclass.num_servers or self.num_servers,
            link_traces=self.resolve_links(),
            server_hosts=self.query_servers(qclass, client_index, ordinal),
            client_host=self.client_host,
            images_per_server=qclass.images_per_server or self.images_per_server,
            workload_seed=base_seed,
            control_seed=base_seed,
            startup_cost=self.startup_cost,
            nic_capacity=self.nic_capacity,
            disk_rate=self.disk_rate,
            monitoring=self.monitoring,
            seed_initial_snapshot=self.seed_initial_snapshot,
            max_sim_time=self.max_sim_time,
            fluid_fast_path=self.fluid_fast_path,
            planner_engine=self.planner_engine,
        )
        kwargs.update(dict(qclass.overrides))
        return SimulationSpec(**kwargs)

    # ---- adapters -----------------------------------------------------
    @classmethod
    def from_experiment_config(
        cls,
        config: ExperimentConfig,
        classes: tuple[QueryClass, ...],
        *,
        config_index: int = 0,
        **kwargs: Any,
    ) -> "WorkloadSpec":
        """A workload over the substrate an :class:`ExperimentConfig`
        describes.

        The shared network is configuration ``config_index`` of the same
        study a single-query sweep would use (same seeds, same library),
        and the config's per-run knobs (``relocation_period``,
        ``local_extra_candidates``) become per-class overrides unless a
        class already pins them.  Remaining workload fields —
        ``num_clients``, ``arrivals``, ``seed``, ... — pass through
        ``kwargs``.
        """
        defaults = {
            "relocation_period": config.relocation_period,
            "local_extra_candidates": config.local_extra_candidates,
        }
        merged_classes = []
        for qclass in classes:
            overrides = dict(defaults)
            overrides.update(dict(qclass.overrides))
            merged_classes.append(replace(qclass, overrides=overrides))
        kwargs.setdefault("fault_plan", config.fault_plan)
        kwargs.setdefault("planner_engine", config.planner_engine)
        return cls(
            classes=tuple(merged_classes),
            num_servers=config.num_servers,
            tree_shape=config.tree_shape,
            images_per_server=config.images_per_server,
            network_seed=config.seed,
            config_index=config_index,
            study_seed=config.study_seed,
            library=config.library,
            **kwargs,
        )

    @classmethod
    def from_simulation_spec(cls, spec: SimulationSpec) -> "WorkloadSpec":
        """Wrap a single-query spec as a one-client, one-query workload.

        Running the result through the workload engine is bit-identical
        to ``run_simulation(spec)`` (metrics, and trace events modulo the
        ``query_id`` tag) — the identity test pins this.
        """
        overrides = {
            f.name: getattr(spec, f.name)
            for f in dataclass_fields(SimulationSpec)
            if f.name not in _STRUCTURAL_FIELDS
        }
        qclass = QueryClass(
            name=spec.algorithm.value,
            algorithm=spec.algorithm,
            overrides=overrides,
        )
        return cls(
            classes=(qclass,),
            num_clients=1,
            queries_per_client=1,
            arrivals=ClosedLoop(think_time=0.0),
            seed=spec.workload_seed,
            num_servers=spec.num_servers,
            tree_shape=spec.tree_shape,
            images_per_server=spec.images_per_server,
            link_traces=spec.link_traces,
            server_hosts_override=tuple(spec.server_hosts),
            client_host=spec.client_host,
            fault_plan=spec.faults,
            monitoring=spec.monitoring,
            startup_cost=spec.startup_cost,
            nic_capacity=spec.nic_capacity,
            disk_rate=spec.disk_rate,
            seed_initial_snapshot=spec.seed_initial_snapshot,
            max_sim_time=spec.max_sim_time,
        )
