"""repro.workload — concurrent multi-query workloads on a shared network.

The single-query engine answers "how fast is one combination query under
this placement algorithm?".  This package answers the fleet question:
N clients issuing queries — open- or closed-loop, with a heterogeneous
mix of planners and tree sizes — all contending for the same wide-area
links, NICs, monitoring substrate and fault timeline.

* :class:`WorkloadSpec` / :class:`QueryClass` — the declarative spec.
* :class:`OpenLoop` / :class:`ClosedLoop` — seeded arrival disciplines.
* :func:`run_workload` / :class:`WorkloadEngine` — execution.
* :func:`run_workload_sweep` — parallel batches of workloads.
* :func:`run_workload_sharded` — one fleet, client-hash sharded across
  processes with order-invariant :class:`MetricsSink` merges.
* :func:`fleet_from_trace` — rebuild the fleet summary from a trace.
* :class:`OverloadPolicy` / :class:`OverloadController` — fleet-level
  overload protection: admission control with seeded shedding, per-class
  deadlines and SLO targets, per-client retry budgets, and per-host
  circuit breakers that reroute to degraded plans under chaos.  All
  knobs default off, keeping unprotected runs bit-identical.
* :class:`FleetPolicy` / :class:`FleetCoordinator` (re-exported from
  :mod:`repro.fleet`) — fleet-aware joint planning: planners see
  contention-adjusted residual bandwidth and relocations pass through a
  deterministic per-link token-bucket arbiter (optionally
  SLO-fairness-biased).  ``WorkloadSpec.fleet=None`` keeps every query
  planning blindly, bit-identical to the pre-fleet engine.

Fleet metrics flow through one :class:`MetricsSink` funnel: exact
(``workload_schema: 1``) below ``WorkloadSpec.exact_metrics_threshold``,
streaming quantile sketches (``workload_schema: 2``, flat memory) above
it.

Every trace event of a workload run is tagged with its ``query_id``, so
a shared trace can be sliced per query
(:func:`repro.obs.summary.query_records`) and replayed bit-exactly.
"""

from repro.fleet import CoordinationCounters, FleetCoordinator, FleetPolicy
from repro.workload.arrivals import (
    Arrivals,
    ClosedLoop,
    OpenLoop,
    arrival_rng,
    open_loop_times,
    think_seconds,
)
from repro.workload.engine import (
    QueryResult,
    ScheduledQuery,
    WorkloadEngine,
    WorkloadResult,
    build_schedule,
    run_workload,
)
from repro.workload.metrics import (
    LATENCY_KEYS,
    STREAMING_SCHEMA,
    WORKLOAD_SCHEMA,
    LinkUsage,
    LinkUsageRecorder,
    QueryOutcome,
    build_fleet_summary,
    fleet_from_trace,
    jain_index,
)
from repro.workload.overload import (
    OverloadController,
    OverloadPolicy,
    ResilienceCounters,
)
from repro.workload.sink import (
    DEFAULT_EXACT_THRESHOLD,
    ExactFleetMetrics,
    MetricsSink,
    QueryStats,
    StreamingFleetMetrics,
    client_index_of,
    fleet_metrics_for,
    merge_sinks,
    note_slo,
)
from repro.workload.sketch import OrderFreeSum, QuantileSketch
from repro.workload.spec import (
    QueryClass,
    WorkloadSpec,
    client_of,
    query_id_for,
)
from repro.workload.sweep import (
    run_workload_sharded,
    run_workload_sweep,
    shard_clients,
    shard_of,
)

__all__ = [
    "CoordinationCounters",
    "FleetCoordinator",
    "FleetPolicy",
    "Arrivals",
    "ClosedLoop",
    "OpenLoop",
    "arrival_rng",
    "open_loop_times",
    "think_seconds",
    "QueryResult",
    "ScheduledQuery",
    "WorkloadEngine",
    "WorkloadResult",
    "build_schedule",
    "run_workload",
    "LATENCY_KEYS",
    "STREAMING_SCHEMA",
    "WORKLOAD_SCHEMA",
    "LinkUsage",
    "LinkUsageRecorder",
    "QueryOutcome",
    "build_fleet_summary",
    "fleet_from_trace",
    "jain_index",
    "DEFAULT_EXACT_THRESHOLD",
    "ExactFleetMetrics",
    "MetricsSink",
    "QueryStats",
    "StreamingFleetMetrics",
    "client_index_of",
    "fleet_metrics_for",
    "merge_sinks",
    "note_slo",
    "OverloadController",
    "OverloadPolicy",
    "ResilienceCounters",
    "OrderFreeSum",
    "QuantileSketch",
    "QueryClass",
    "WorkloadSpec",
    "client_of",
    "query_id_for",
    "run_workload_sharded",
    "run_workload_sweep",
    "shard_clients",
    "shard_of",
]
