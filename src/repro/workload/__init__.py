"""repro.workload — concurrent multi-query workloads on a shared network.

The single-query engine answers "how fast is one combination query under
this placement algorithm?".  This package answers the fleet question:
N clients issuing queries — open- or closed-loop, with a heterogeneous
mix of planners and tree sizes — all contending for the same wide-area
links, NICs, monitoring substrate and fault timeline.

* :class:`WorkloadSpec` / :class:`QueryClass` — the declarative spec.
* :class:`OpenLoop` / :class:`ClosedLoop` — seeded arrival disciplines.
* :func:`run_workload` / :class:`WorkloadEngine` — execution.
* :func:`run_workload_sweep` — parallel batches of workloads.
* :func:`fleet_from_trace` — rebuild the fleet summary from a trace.

Every trace event of a workload run is tagged with its ``query_id``, so
a shared trace can be sliced per query
(:func:`repro.obs.summary.query_records`) and replayed bit-exactly.
"""

from repro.workload.arrivals import (
    Arrivals,
    ClosedLoop,
    OpenLoop,
    arrival_rng,
    open_loop_times,
    think_seconds,
)
from repro.workload.engine import (
    QueryResult,
    ScheduledQuery,
    WorkloadEngine,
    WorkloadResult,
    build_schedule,
    run_workload,
)
from repro.workload.metrics import (
    WORKLOAD_SCHEMA,
    LinkUsage,
    LinkUsageRecorder,
    QueryOutcome,
    build_fleet_summary,
    fleet_from_trace,
    jain_index,
)
from repro.workload.spec import (
    QueryClass,
    WorkloadSpec,
    client_of,
    query_id_for,
)
from repro.workload.sweep import run_workload_sweep

__all__ = [
    "Arrivals",
    "ClosedLoop",
    "OpenLoop",
    "arrival_rng",
    "open_loop_times",
    "think_seconds",
    "QueryResult",
    "ScheduledQuery",
    "WorkloadEngine",
    "WorkloadResult",
    "build_schedule",
    "run_workload",
    "WORKLOAD_SCHEMA",
    "LinkUsage",
    "LinkUsageRecorder",
    "QueryOutcome",
    "build_fleet_summary",
    "fleet_from_trace",
    "jain_index",
    "QueryClass",
    "WorkloadSpec",
    "client_of",
    "query_id_for",
    "run_workload_sweep",
]
