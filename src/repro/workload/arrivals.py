"""Arrival processes: when each client issues its queries.

Two disciplines, both seeded and fully deterministic:

* **Open loop** (:class:`OpenLoop`) — each client issues queries at
  externally-driven instants, independent of how long queries take.
  ``process="poisson"`` draws exponential inter-arrival gaps with mean
  ``1/rate``; ``process="fixed"`` issues exactly every ``1/rate``
  seconds starting at t=0.  Open-loop load keeps pressing even when the
  network is saturated, which is what exposes contention collapse.
* **Closed loop** (:class:`ClosedLoop`) — each client waits for its
  previous query to complete, thinks for a while, then issues the next.
  ``process="fixed"`` thinks exactly ``think_time`` seconds;
  ``process="poisson"`` draws exponential think times with that mean.
  Closed-loop load self-regulates: a slow network slows the clients.

Every client gets its own :func:`arrival_rng` stream derived from
``(workload seed, client index)``, so adding a client never perturbs the
arrival sequence of existing ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

_OPEN_PROCESSES = ("poisson", "fixed")
_CLOSED_PROCESSES = ("fixed", "poisson")


@dataclass(frozen=True)
class OpenLoop:
    """Rate-driven arrivals: queries are issued regardless of completions."""

    #: Mean queries per second issued by each client.
    rate: float
    #: ``"poisson"`` (exponential gaps) or ``"fixed"`` (every 1/rate s).
    process: str = "poisson"

    def __post_init__(self) -> None:
        if not self.rate > 0:
            raise ValueError(f"open-loop rate must be positive, got {self.rate!r}")
        if self.process not in _OPEN_PROCESSES:
            raise ValueError(f"unknown open-loop process {self.process!r}")


@dataclass(frozen=True)
class ClosedLoop:
    """Completion-driven arrivals: think, issue, wait, repeat."""

    #: Seconds (or mean seconds, for ``"poisson"``) between a query's
    #: completion and the client's next issue.  Zero chains back-to-back.
    think_time: float = 0.0
    #: ``"fixed"`` (exactly think_time) or ``"poisson"`` (exponential).
    process: str = "fixed"

    def __post_init__(self) -> None:
        if self.think_time < 0:
            raise ValueError(
                f"think_time must be non-negative, got {self.think_time!r}"
            )
        if self.process not in _CLOSED_PROCESSES:
            raise ValueError(f"unknown closed-loop process {self.process!r}")


Arrivals = Union[OpenLoop, ClosedLoop]


def arrival_rng(seed: int, client_index: int) -> np.random.Generator:
    """The arrival/think random stream for one client."""
    return np.random.default_rng((seed, 4201, client_index))


def open_loop_times(
    arrivals: OpenLoop, count: int, rng: np.random.Generator
) -> list[float]:
    """The ``count`` issue instants for one open-loop client, ascending."""
    if count <= 0:
        return []
    if arrivals.process == "poisson":
        gaps = rng.exponential(1.0 / arrivals.rate, size=count)
        return [float(t) for t in np.cumsum(gaps)]
    return [i / arrivals.rate for i in range(count)]


def think_seconds(arrivals: ClosedLoop, rng: np.random.Generator) -> float:
    """One think-time draw for a closed-loop client."""
    if arrivals.process == "poisson":
        return float(rng.exponential(arrivals.think_time))
    return arrivals.think_time
