"""Mergeable, deterministic accumulators for streaming fleet metrics.

Million-query fleets cannot keep exact latency lists, so the streaming
metrics path (:mod:`repro.workload.sink`) aggregates into two pure-python
structures whose merges are *exactly* associative and commutative — the
property that makes client-hash sharding order-invariant:

* :class:`QuantileSketch` — a DDSketch-style logarithmic-bucket
  histogram.  Bucket counts are integers, so merging is plain integer
  addition in any order; quantile estimates carry a guaranteed relative
  error bound of ``relative_error`` (the bucket width).  We chose this
  over P²/t-digest (the other classic streaming-quantile designs)
  precisely because their centroid merges are order-sensitive: a
  t-digest merged A+(B+C) differs from (A+B)+C in the last float bits,
  which would break the sharding acceptance criterion.

* :class:`OrderFreeSum` — a float accumulator whose merged value is
  independent of merge order.  Each shard accumulates one ordinary
  partial sum; merging concatenates the partials and the final value is
  ``math.fsum`` over them, which is exactly rounded and therefore a pure
  function of the *multiset* of partials.

Neither structure imports anything beyond the stdlib, and both pickle
cleanly across process pools.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Optional, Sequence

__all__ = ["OrderFreeSum", "QuantileSketch"]


class OrderFreeSum:
    """A float sum whose value is invariant under merge order.

    Local adds fold into the current partial with ordinary ``+=`` (so an
    unmerged, single-shard accumulator reproduces today's exact
    accumulation bit for bit); :meth:`merge` concatenates partial lists;
    :attr:`value` is the exactly-rounded ``math.fsum`` of the partials.
    """

    __slots__ = ("_parts",)

    def __init__(self, parts: Optional[Iterable[float]] = None) -> None:
        self._parts: list[float] = list(parts) if parts is not None else [0.0]
        if not self._parts:
            self._parts = [0.0]

    def add(self, value: float) -> None:
        self._parts[-1] += value

    def merge(self, other: "OrderFreeSum") -> "OrderFreeSum":
        self._parts.extend(other._parts)
        return self

    @property
    def value(self) -> float:
        if len(self._parts) == 1:
            return self._parts[0]
        return math.fsum(self._parts)

    @property
    def parts(self) -> tuple[float, ...]:
        return tuple(self._parts)

    def __getstate__(self) -> list[float]:
        return self._parts

    def __setstate__(self, state: list[float]) -> None:
        self._parts = list(state) or [0.0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OrderFreeSum({self.value!r}, parts={len(self._parts)})"


class QuantileSketch:
    """A mergeable log-bucket quantile sketch with bounded relative error.

    Positive values land in bucket ``ceil(log_gamma(v))`` where
    ``gamma = (1 + eps) / (1 - eps)``; a bucket's representative value is
    the harmonic midpoint ``2 * gamma**i / (gamma + 1)``, which bounds
    the relative error of any quantile estimate by ``eps``.  Values at or
    below ``min_positive`` share one exact zero bucket.  Counts are
    integers, so :meth:`merge` is associative and commutative exactly —
    not merely up to float rounding.

    The sketch additionally tracks exact ``count``/``min``/``max`` and an
    :class:`OrderFreeSum` of values, so ``mean`` and the extreme
    quantiles stay exact and merge order-invariant too.
    """

    __slots__ = (
        "relative_error",
        "_gamma",
        "_log_gamma",
        "_min_positive",
        "_buckets",
        "_zero_count",
        "_count",
        "_min",
        "_max",
        "_sum",
    )

    def __init__(
        self,
        relative_error: float = 0.01,
        *,
        min_positive: float = 1e-9,
    ) -> None:
        if not (0.0 < relative_error < 1.0):
            raise ValueError(
                f"relative_error must be in (0, 1), got {relative_error!r}"
            )
        self.relative_error = float(relative_error)
        self._gamma = (1.0 + self.relative_error) / (1.0 - self.relative_error)
        self._log_gamma = math.log(self._gamma)
        self._min_positive = float(min_positive)
        self._buckets: dict[int, int] = {}
        self._zero_count = 0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        self._sum = OrderFreeSum()

    # -- accumulation ---------------------------------------------------
    def add(self, value: float) -> None:
        value = float(value)
        if value < 0.0 or not math.isfinite(value):
            raise ValueError(f"sketch values must be finite and >= 0: {value!r}")
        self._count += 1
        self._sum.add(value)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value <= self._min_positive:
            self._zero_count += 1
            return
        key = math.ceil(math.log(value) / self._log_gamma)
        self._buckets[key] = self._buckets.get(key, 0) + 1

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    # -- merging --------------------------------------------------------
    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        if other.relative_error != self.relative_error:
            raise ValueError(
                "cannot merge sketches with different error bounds: "
                f"{self.relative_error} vs {other.relative_error}"
            )
        for key, count in other._buckets.items():
            self._buckets[key] = self._buckets.get(key, 0) + count
        self._zero_count += other._zero_count
        self._count += other._count
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        self._sum.merge(other._sum)
        return self

    # -- queries --------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum.value

    @property
    def mean(self) -> Optional[float]:
        if self._count == 0:
            return None
        return self._sum.value / self._count

    @property
    def min(self) -> Optional[float]:
        return self._min if self._count else None

    @property
    def max(self) -> Optional[float]:
        return self._max if self._count else None

    def quantile(self, q: float) -> Optional[float]:
        """The estimated ``q``-quantile (``0 <= q <= 1``) or ``None``.

        Uses the nearest-rank convention on ``rank = q * (count - 1)``;
        estimates are clamped into the exact observed ``[min, max]``, so
        q=0 and q=1 are exact and every estimate in between is within
        ``relative_error`` of a true order statistic.
        """
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self._count == 0:
            return None
        rank = q * (self._count - 1)
        cumulative = self._zero_count
        if rank < cumulative:
            return max(0.0, min(self._min, self._min_positive))
        estimate = self._max
        for key in sorted(self._buckets):
            cumulative += self._buckets[key]
            if rank < cumulative:
                estimate = 2.0 * self._gamma**key / (self._gamma + 1.0)
                break
        return min(self._max, max(self._min, estimate))

    def percentile(self, p: float) -> Optional[float]:
        """:meth:`quantile` on the ``[0, 100]`` scale."""
        return self.quantile(p / 100.0)

    # -- persistence ----------------------------------------------------
    def to_state(self) -> dict[str, Any]:
        """A JSON-friendly snapshot (bucket keys as strings)."""
        return {
            "relative_error": self.relative_error,
            "min_positive": self._min_positive,
            "buckets": {str(k): v for k, v in sorted(self._buckets.items())},
            "zero_count": self._zero_count,
            "count": self._count,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "sum_parts": list(self._sum.parts),
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "QuantileSketch":
        sketch = cls(
            state["relative_error"], min_positive=state["min_positive"]
        )
        sketch._buckets = {int(k): int(v) for k, v in state["buckets"].items()}
        sketch._zero_count = int(state["zero_count"])
        sketch._count = int(state["count"])
        sketch._min = math.inf if state["min"] is None else float(state["min"])
        sketch._max = -math.inf if state["max"] is None else float(state["max"])
        sketch._sum = OrderFreeSum(state["sum_parts"])
        return sketch

    def __getstate__(self) -> dict[str, Any]:
        return self.to_state()

    def __setstate__(self, state: dict[str, Any]) -> None:
        restored = QuantileSketch.from_state(state)
        for slot in self.__slots__:
            setattr(self, slot, getattr(restored, slot))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantileSketch(eps={self.relative_error}, count={self._count}, "
            f"buckets={len(self._buckets)})"
        )


def exact_percentiles(
    values: Sequence[float], percentiles: Sequence[float]
) -> list[float]:
    """Nearest-rank order statistics (the sketch's ground truth).

    Unlike ``np.percentile`` (which interpolates), this returns actual
    observed values, so sketch-vs-exact error-bound tests compare like
    with like.
    """
    ordered = sorted(float(v) for v in values)
    if not ordered:
        raise ValueError("need at least one value")
    out = []
    for p in percentiles:
        rank = (p / 100.0) * (len(ordered) - 1)
        out.append(ordered[round(rank)])
    return out
