"""Parallel execution of workload batches.

Mirrors :mod:`repro.experiments.parallel`: a batch of named
:class:`~repro.workload.spec.WorkloadSpec` tasks fans out over a
:class:`~concurrent.futures.ProcessPoolExecutor` with bit-identical
results to the serial loop — every workload is a pure function of its
spec, results are re-assembled in task order, and platforms without
process pools silently degrade to the serial path.

Specs whose ``library`` is ``None`` rebuild the trace study inside each
worker from ``study_seed`` (cached per process), so the ~66-pair trace
library never crosses a pipe per task.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.experiments.parallel import _POOL_UNAVAILABLE, resolve_workers
from repro.workload.engine import run_workload
from repro.workload.spec import WorkloadSpec

#: One task: ``(name, spec)``; results are keyed by name.
WorkloadTask = tuple[str, WorkloadSpec]


def _normalize_tasks(tasks: Sequence[tuple]) -> list[WorkloadTask]:
    normalized: list[WorkloadTask] = []
    seen: set[str] = set()
    for task in tasks:
        if len(task) != 2:
            raise ValueError(f"task must be (name, WorkloadSpec), got {task!r}")
        name, spec = task
        name = str(name)
        if not isinstance(spec, WorkloadSpec):
            raise ValueError(f"task {name!r} is not a WorkloadSpec: {spec!r}")
        if name in seen:
            raise ValueError(f"duplicate workload task name {name!r}")
        seen.add(name)
        normalized.append((name, spec))
    return normalized


def _run_task(task: WorkloadTask) -> tuple[str, dict[str, Any]]:
    """Worker body: run one workload, return its fleet summary.

    Only the JSON-safe fleet dict crosses the pipe back — per-query
    :class:`~repro.engine.metrics.RunMetrics` are embedded as summaries
    inside it.
    """
    name, spec = task
    return name, run_workload(spec).to_dict()


def run_workload_sweep(
    tasks: Sequence[tuple],
    *,
    workers: Optional[int] = None,
    progress: Optional[Callable[[str, dict], None]] = None,
) -> dict[str, dict[str, Any]]:
    """Run a batch of ``(name, WorkloadSpec)`` tasks.

    Returns ``{name: fleet summary dict}`` with one entry per task, in
    task order, independent of the worker count.  ``workers`` resolves
    exactly as in :func:`repro.experiments.parallel.resolve_workers`
    (explicit argument, then ``REPRO_WORKERS``, then serial).
    """
    normalized = _normalize_tasks(tasks)
    effective = resolve_workers(workers)
    if effective > 1 and len(normalized) > 1:
        try:
            return _run_parallel(normalized, effective, progress)
        except _POOL_UNAVAILABLE:
            pass  # no process pool on this platform: degrade to serial
    results: dict[str, dict[str, Any]] = {}
    for task in normalized:
        name, fleet = _run_task(task)
        results[name] = fleet
        if progress is not None:
            progress(name, fleet)
    return results


def _run_parallel(
    tasks: Sequence[WorkloadTask],
    workers: int,
    progress: Optional[Callable[[str, dict], None]],
) -> dict[str, dict[str, Any]]:
    from concurrent.futures import ProcessPoolExecutor

    results: dict[str, dict[str, Any]] = {}
    with ProcessPoolExecutor(max_workers=workers) as pool:
        # ``map`` yields in submission order: progress fires in task
        # order even though execution interleaves.
        for name, fleet in pool.map(_run_task, tasks, chunksize=1):
            results[name] = fleet
            if progress is not None:
                progress(name, fleet)
    return results
