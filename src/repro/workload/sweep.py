"""Parallel execution of workload batches and sharded fleets.

Mirrors :mod:`repro.experiments.parallel`: a batch of named
:class:`~repro.workload.spec.WorkloadSpec` tasks fans out over a
:class:`~concurrent.futures.ProcessPoolExecutor` with bit-identical
results to the serial loop — every workload is a pure function of its
spec, results are re-assembled in task order, and platforms without
process pools silently degrade to the serial path.

Beyond per-task parallelism, one *fleet* can itself be sharded across
processes by client hash (:func:`shard_clients` /
:func:`run_workload_sharded`): each shard runs the sub-population's
queries on its own substrate and ships its mergeable
:class:`~repro.workload.sink.MetricsSink` back, and the merged summary
is identical whichever order the shards arrive in (the sinks' merges
are order-invariant by construction).  Sharding trades away cross-shard
network contention — clients in different shards no longer compete for
the same links — in exchange for memory and wall-clock that scale with
``population / shards``; it is the intended path once a fleet outgrows
one process.

Specs whose ``library`` is ``None`` rebuild the trace study inside each
worker from ``study_seed`` (cached per process), so the ~66-pair trace
library never crosses a pipe per task.
"""

from __future__ import annotations

import zlib
from dataclasses import replace
from typing import Any, Callable, Optional, Sequence

from repro.experiments.parallel import _POOL_UNAVAILABLE, resolve_workers
from repro.workload.engine import WorkloadResult, run_workload
from repro.workload.sink import MetricsSink, merge_sinks
from repro.workload.spec import WorkloadSpec

#: One task: ``(name, spec)``; results are keyed by name.
WorkloadTask = tuple[str, WorkloadSpec]


def shard_of(client_index: int, num_shards: int) -> int:
    """The shard owning one client: a salt-free deterministic hash.

    Uses CRC-32 of the decimal client index (not python's salted
    ``hash``), so shard membership is stable across processes and runs.
    """
    return zlib.crc32(str(client_index).encode("ascii")) % num_shards


def shard_clients(spec: WorkloadSpec, num_shards: int) -> list[WorkloadSpec]:
    """Split a spec's client population into per-shard sub-specs.

    Every shard keeps the full spec (seeds, network draw, classes) and
    restricts ``client_subset`` to its hash bucket, so per-client seeds
    and query ids match the unsharded run.  The metrics mode is resolved
    *once* against the full fleet size and forced on every shard, so all
    shard sinks are mutually mergeable.  Shards with no clients are
    dropped.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    resolved_mode = spec.metrics_mode
    if resolved_mode is None:
        resolved_mode = (
            "exact"
            if spec.total_queries <= spec.exact_metrics_threshold
            else "streaming"
        )
    buckets: list[list[int]] = [[] for _ in range(num_shards)]
    for client_index in spec.client_indices:
        buckets[shard_of(client_index, num_shards)].append(client_index)
    return [
        replace(
            spec, client_subset=tuple(bucket), metrics_mode=resolved_mode
        )
        for bucket in buckets
        if bucket
    ]


def _run_shard(task: tuple[int, WorkloadSpec]) -> tuple[int, float, MetricsSink]:
    """Worker body: run one shard, return its mergeable sink."""
    index, spec = task
    result = run_workload(spec)
    return index, result.elapsed, result.metrics


def run_workload_sharded(
    spec: WorkloadSpec,
    num_shards: int,
    *,
    workers: Optional[int] = None,
) -> WorkloadResult:
    """Run one fleet split across ``num_shards`` client-hash shards.

    Each shard's sink merges into one fleet summary whose ``elapsed`` is
    the slowest shard and whose ``scheduled`` covers the whole
    population.  The merge is order-invariant, and the serial fallback
    (no process pool, or ``workers=1``) is bit-identical to the parallel
    path.  Per-query results are not materialized (``result.queries`` is
    empty); tracing a sharded run is unsupported.
    """
    shard_specs = shard_clients(spec, num_shards)
    if not shard_specs:
        sink = spec.build_metrics()
        return WorkloadResult(
            spec=spec,
            elapsed=0.0,
            queries=[],
            fleet=sink.summary(0.0, scheduled=0),
            metrics=sink,
        )
    tasks = list(enumerate(shard_specs))
    effective = resolve_workers(workers)
    outputs: Optional[list[tuple[int, float, MetricsSink]]] = None
    if effective > 1 and len(tasks) > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(
                max_workers=min(effective, len(tasks))
            ) as pool:
                outputs = list(pool.map(_run_shard, tasks, chunksize=1))
        except _POOL_UNAVAILABLE:
            outputs = None  # degrade to serial below
    if outputs is None:
        outputs = [_run_shard(task) for task in tasks]
    outputs.sort(key=lambda item: item[0])
    elapsed = max(item[1] for item in outputs)
    sink = merge_sinks([item[2] for item in outputs])
    scheduled = sum(s.total_queries for s in shard_specs)
    return WorkloadResult(
        spec=spec,
        elapsed=elapsed,
        queries=[],
        fleet=sink.summary(elapsed, scheduled=scheduled),
        metrics=sink,
    )


def _normalize_tasks(tasks: Sequence[tuple]) -> list[WorkloadTask]:
    normalized: list[WorkloadTask] = []
    seen: set[str] = set()
    for task in tasks:
        if len(task) != 2:
            raise ValueError(f"task must be (name, WorkloadSpec), got {task!r}")
        name, spec = task
        name = str(name)
        if not isinstance(spec, WorkloadSpec):
            raise ValueError(f"task {name!r} is not a WorkloadSpec: {spec!r}")
        if name in seen:
            raise ValueError(f"duplicate workload task name {name!r}")
        seen.add(name)
        normalized.append((name, spec))
    return normalized


def _run_task(task: WorkloadTask) -> tuple[str, dict[str, Any]]:
    """Worker body: run one workload, return its fleet summary.

    Only the JSON-safe fleet dict crosses the pipe back — per-query
    :class:`~repro.engine.metrics.RunMetrics` are embedded as summaries
    inside it.
    """
    name, spec = task
    return name, run_workload(spec).to_dict()


def run_workload_sweep(
    tasks: Sequence[tuple],
    *,
    workers: Optional[int] = None,
    shards: int = 1,
    progress: Optional[Callable[[str, dict], None]] = None,
) -> dict[str, dict[str, Any]]:
    """Run a batch of ``(name, WorkloadSpec)`` tasks.

    Returns ``{name: fleet summary dict}`` with one entry per task, in
    task order, independent of the worker count.  ``workers`` resolves
    exactly as in :func:`repro.experiments.parallel.resolve_workers`
    (explicit argument, then ``REPRO_WORKERS``, then serial).  With
    ``shards > 1`` each task's fleet is client-hash sharded across the
    worker pool (:func:`run_workload_sharded`), which is how sweeps over
    fleets too large for one process's memory are meant to run.
    """
    normalized = _normalize_tasks(tasks)
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if shards > 1:
        results: dict[str, dict[str, Any]] = {}
        for name, spec in normalized:
            fleet = run_workload_sharded(spec, shards, workers=workers).fleet
            results[name] = fleet
            if progress is not None:
                progress(name, fleet)
        return results
    effective = resolve_workers(workers)
    if effective > 1 and len(normalized) > 1:
        try:
            return _run_parallel(normalized, effective, progress)
        except _POOL_UNAVAILABLE:
            pass  # no process pool on this platform: degrade to serial
    results = {}
    for task in normalized:
        name, fleet = _run_task(task)
        results[name] = fleet
        if progress is not None:
            progress(name, fleet)
    return results


def _run_parallel(
    tasks: Sequence[WorkloadTask],
    workers: int,
    progress: Optional[Callable[[str, dict], None]],
) -> dict[str, dict[str, Any]]:
    from concurrent.futures import ProcessPoolExecutor

    results: dict[str, dict[str, Any]] = {}
    with ProcessPoolExecutor(max_workers=workers) as pool:
        # ``map`` yields in submission order: progress fires in task
        # order even though execution interleaves.
        for name, fleet in pool.map(_run_task, tasks, chunksize=1):
            results[name] = fleet
            if progress is not None:
                progress(name, fleet)
    return results
